//! Self-benchmark behind `datasync perf`: measures what this repo's two
//! performance mechanisms actually buy on this machine.
//!
//! * **Fast-forward kernel** — a spin-heavy Doacross (the Fig 2.1 loop
//!   under the process-oriented scheme with inflated statement costs, so
//!   consumers spin for thousands of cycles between events) is run in
//!   both stepping modes. The modes are bit-identical by contract, so
//!   the ratio of wall-clock times is a pure kernel speedup.
//! * **Parallel sweep runner** — a batch of independent faulted runs is
//!   classified serially and through [`crate::sweep::runs`]; on a
//!   single-core host the two are expected to tie.
//!
//! The report serializes to JSON (hand-rolled — the workspace is
//! dependency-free) for `BENCH_sim.json` and the CI smoke step.

use crate::sweep;
use datasync_loopir::analysis::analyze;
use datasync_loopir::space::IterSpace;
use datasync_loopir::workpatterns::fig21_loop;
use datasync_schemes::scheme::Scheme;
use datasync_schemes::{classify_run, ProcessOriented};
use datasync_sim::{FaultPlan, MachineConfig, StepMode};
use std::time::Instant;

/// Results of one self-benchmark run.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// What was simulated.
    pub workload: String,
    /// Threads the parallel sweep actually used (requested, capped at
    /// the hardware parallelism).
    pub threads: usize,
    /// Threads requested via `DATASYNC_THREADS` (or auto-detected when
    /// unset). A historical report claimed `threads: 4` on a one-core
    /// host because the requested count was published as the used one.
    pub threads_requested: usize,
    /// Hardware threads the host actually exposes.
    pub threads_available: usize,
    /// Makespan of one benchmark run (simulated cycles).
    pub simulated_cycles: u64,
    /// Wall-clock seconds per fast-forward run.
    pub fast_seconds: f64,
    /// Wall-clock seconds per reference (per-cycle) run.
    pub reference_seconds: f64,
    /// Simulated cycles per wall-clock second, fast-forward kernel.
    pub fast_cycles_per_sec: f64,
    /// Simulated cycles per wall-clock second, reference stepper.
    pub reference_cycles_per_sec: f64,
    /// Fast-forward kernel speedup over per-cycle stepping.
    pub fast_forward_speedup: f64,
    /// Runs in the sweep batch.
    pub sweep_runs: usize,
    /// Sweep runs per second, one worker.
    pub serial_runs_per_sec: f64,
    /// Sweep runs per second, parallel sweep runner.
    pub parallel_runs_per_sec: f64,
    /// Parallel-over-serial sweep speedup (about 1.0 on one core).
    pub sweep_speedup: f64,
    /// Fast-forward x parallel-sweep: total speedup over the seed
    /// behavior (per-cycle stepping, serial sweeps).
    pub combined_speedup: f64,
    /// True when the host exposes a single worker thread: the parallel
    /// sweep cannot win there, so `sweep_speedup` and `combined_speedup`
    /// are reported as `null` instead of being passed off as results.
    pub degraded: bool,
}

impl PerfReport {
    /// Hand-rolled JSON rendering for `BENCH_sim.json`.
    pub fn to_json(&self) -> String {
        let f = |v: f64| {
            if v.is_finite() {
                format!("{v:.3}")
            } else {
                "null".into()
            }
        };
        // Per-run wall times can be well under a millisecond.
        let secs = |v: f64| {
            if v.is_finite() {
                format!("{v:.6}")
            } else {
                "null".into()
            }
        };
        format!(
            concat!(
                "{{\n",
                "  \"workload\": \"{workload}\",\n",
                "  \"threads\": {threads},\n",
                "  \"threads_requested\": {threads_requested},\n",
                "  \"threads_available\": {threads_available},\n",
                "  \"simulated_cycles\": {cycles},\n",
                "  \"fast_seconds\": {fast_s},\n",
                "  \"reference_seconds\": {ref_s},\n",
                "  \"fast_cycles_per_sec\": {fast_cps},\n",
                "  \"reference_cycles_per_sec\": {ref_cps},\n",
                "  \"fast_forward_speedup\": {ff},\n",
                "  \"sweep_runs\": {runs},\n",
                "  \"serial_runs_per_sec\": {srps},\n",
                "  \"parallel_runs_per_sec\": {prps},\n",
                "  \"sweep_speedup\": {ss},\n",
                "  \"combined_speedup\": {combined},\n",
                "  \"degraded\": {degraded}\n",
                "}}\n",
            ),
            workload = self.workload,
            threads = self.threads,
            threads_requested = self.threads_requested,
            threads_available = self.threads_available,
            cycles = self.simulated_cycles,
            fast_s = secs(self.fast_seconds),
            ref_s = secs(self.reference_seconds),
            fast_cps = f(self.fast_cycles_per_sec),
            ref_cps = f(self.reference_cycles_per_sec),
            ff = f(self.fast_forward_speedup),
            runs = self.sweep_runs,
            srps = f(self.serial_runs_per_sec),
            prps = f(self.parallel_runs_per_sec),
            ss = f(self.sweep_speedup),
            combined = f(self.combined_speedup),
            degraded = self.degraded,
        )
    }

    /// One-paragraph human summary. On a single-threaded host the sweep
    /// and combined lines become warnings instead of fake wins.
    pub fn summary(&self) -> String {
        let head = format!(
            "perf: {workload}\n\
             fast-forward kernel: {fast_cps:.0} cycles/s vs reference {ref_cps:.0} cycles/s \
             => {ff:.1}x speedup",
            workload = self.workload,
            fast_cps = self.fast_cycles_per_sec,
            ref_cps = self.reference_cycles_per_sec,
            ff = self.fast_forward_speedup,
        );
        if self.degraded {
            let requested = if self.threads_requested > self.threads {
                format!(
                    " ({req} requested, {avail} available — oversubscribed workers \
                     would only have slowed the sweep down)",
                    req = self.threads_requested,
                    avail = self.threads_available,
                )
            } else {
                String::new()
            };
            format!(
                "{head}\n\
                 warning: only 1 worker thread usable{requested} — the parallel sweep \
                 cannot demonstrate a speedup on this host (serial {srps:.1} runs/s)\n\
                 sweep and combined speedups not reported (degraded run); \
                 fast-forward kernel speedup alone: {ff:.1}x",
                srps = self.serial_runs_per_sec,
                ff = self.fast_forward_speedup,
            )
        } else {
            format!(
                "{head}\n\
                 sweep runner ({threads} threads): {prps:.1} runs/s vs serial {srps:.1} runs/s \
                 => {ss:.2}x speedup\n\
                 combined speedup over per-cycle serial baseline: {combined:.1}x",
                threads = self.threads,
                prps = self.parallel_runs_per_sec,
                srps = self.serial_runs_per_sec,
                ss = self.sweep_speedup,
                combined = self.combined_speedup,
            )
        }
    }
}

/// Median-of-three wall-clock timing of `f` (seconds).
pub(crate) fn time_runs<F: FnMut()>(f: F) -> f64 {
    median_of(3, f)
}

/// Runs `f` untimed (at least once) until `min_seconds` of wall clock
/// has accumulated. A single priming run is not enough on an otherwise
/// idle host: the CPU sits in a low-power state and the first few
/// hundred microseconds of work measure the frequency ramp, not the
/// kernel. Sustained warm-up lets the timed medians see steady-state
/// clocks, caches, and branch predictors.
fn warm_up<F: FnMut()>(mut f: F, min_seconds: f64) {
    let t = Instant::now();
    loop {
        f();
        if t.elapsed().as_secs_f64() >= min_seconds {
            return;
        }
    }
}

/// Minimum-of-`n` wall-clock timing of `f` (seconds).
///
/// The minimum is the standard estimator for the cost of a fixed,
/// deterministic kernel on a shared host: every disturbance (preemption
/// by another tenant, a frequency dip, an interrupt) only ever *adds*
/// time, so the least-disturbed sample is the closest to the code's
/// true cost. The gating `--check` deliberately does NOT use this — a
/// regression gate must be robust in the pessimistic direction, so it
/// keeps the median, where a lone lucky sample cannot mask a real
/// slowdown.
fn min_of<F: FnMut()>(n: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Median-of-`n` wall-clock timing of `f` (seconds).
fn median_of<F: FnMut()>(n: usize, mut f: F) -> f64 {
    let mut samples = vec![0.0f64; n]; // alloc-ok: harness setup
    for s in &mut samples {
        let t = Instant::now();
        f();
        *s = t.elapsed().as_secs_f64();
    }
    samples.sort_by(f64::total_cmp);
    samples[n / 2]
}

/// Runs the fixed self-benchmark. `quick` shrinks the workload for smoke
/// runs (CI, tests); the reported *ratios* are meaningful either way.
///
/// # Panics
///
/// Panics if the benchmark workload fails to simulate or the two
/// stepping modes disagree (they are bit-identical by contract).
pub fn run(quick: bool) -> PerfReport {
    let (iters, cost) = if quick { (48i64, 2_000u32) } else { (160, 10_000) };
    let nest = fig21_loop(iters);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let scheme = ProcessOriented::new(8);
    let inflate = move |_id, _pid| cost;
    let compiled = scheme.compile_with(&nest, &graph, &space, Some(&inflate));
    let config = MachineConfig {
        sync_transport: scheme.natural_transport(),
        ..MachineConfig::with_processors(8)
    };

    let fast = compiled.run(&config).expect("perf workload must complete");
    let reference = compiled
        .run_with(&config, StepMode::Reference)
        .expect("perf workload must complete");
    assert_eq!(fast.stats, reference.stats, "stepping modes must be bit-identical");
    let simulated_cycles = fast.stats.makespan;

    warm_up(|| drop(compiled.run(&config).expect("perf workload must complete")), 1.0);
    let fast_seconds = min_of(15, || {
        let _ = compiled.run(&config).expect("perf workload must complete");
    });
    let reference_seconds = min_of(3, || {
        let _ = compiled
            .run_with(&config, StepMode::Reference)
            .expect("perf workload must complete");
    });

    // Sweep batch: the same loop classified under chaos faults at many
    // seeds. Bound max_cycles so wedged faulted runs time out quickly.
    let sweep_runs = if quick { 8 } else { 32 };
    let sweep_config =
        MachineConfig { max_cycles: simulated_cycles.saturating_mul(4), ..config.clone() };
    let jobs = |n: usize| -> Vec<MachineConfig> {
        (0..n as u64)
            .map(|seed| sweep_config.clone().with_faults(FaultPlan::chaos(seed, 40)))
            .collect()
    };
    // Shared hosts drift between speed phases that last whole seconds;
    // timing all serial samples and then all parallel samples can land
    // the two sides in different phases and manufacture (or hide) a
    // speedup. Interleave the samples A/B and keep each side's minimum,
    // so both estimates come from the host's best observed phase.
    warm_up(
        || {
            let _ = sweep::runs_serial(jobs(sweep_runs), |c| classify_run(&compiled, &c));
        },
        0.5,
    );
    let mut serial_seconds = f64::INFINITY;
    let mut parallel_seconds = f64::INFINITY;
    for _ in 0..3 {
        serial_seconds = serial_seconds.min(min_of(1, || {
            let _ = sweep::runs_serial(jobs(sweep_runs), |c| classify_run(&compiled, &c));
        }));
        parallel_seconds = parallel_seconds.min(min_of(1, || {
            let _ = sweep::runs(jobs(sweep_runs), |c| classify_run(&compiled, &c));
        }));
    }

    let fast_cycles_per_sec = simulated_cycles as f64 / fast_seconds;
    let reference_cycles_per_sec = simulated_cycles as f64 / reference_seconds;
    let serial_runs_per_sec = sweep_runs as f64 / serial_seconds;
    let parallel_runs_per_sec = sweep_runs as f64 / parallel_seconds;
    let fast_forward_speedup = reference_seconds / fast_seconds;
    let threads_available = datasync_core::par::available_threads();
    let threads = datasync_core::par::default_threads();
    // What the environment *asked for*, before the hardware cap — so a
    // clamped run is visible in the report instead of silently looking
    // like a deliberate `threads: 1` configuration.
    let threads_requested = std::env::var("DATASYNC_THREADS")
        .ok()
        .and_then(|v| datasync_core::par::threads_from_env(&v).ok())
        .unwrap_or(threads_available);
    let degraded = threads <= 1;
    // A single worker cannot demonstrate a sweep speedup: the measured
    // ratio is timer noise around 1.0. Report null rather than a win.
    let sweep_speedup = if degraded { f64::NAN } else { serial_seconds / parallel_seconds };
    PerfReport {
        workload: format!(
            "fig 2.1 Doacross, process-oriented (X=8), {iters} iterations, \
             {cost}cy statements, 8 processors"
        ),
        threads,
        threads_requested,
        threads_available,
        simulated_cycles,
        fast_seconds,
        reference_seconds,
        fast_cycles_per_sec,
        reference_cycles_per_sec,
        fast_forward_speedup,
        sweep_runs,
        serial_runs_per_sec,
        parallel_runs_per_sec,
        sweep_speedup,
        combined_speedup: fast_forward_speedup * sweep_speedup,
        degraded,
    }
}

/// Outcome of the gating `datasync perf --check` comparison against a
/// committed baseline report.
#[derive(Debug, Clone)]
pub struct PerfCheck {
    /// `fast_cycles_per_sec` from the baseline JSON.
    pub baseline_cycles_per_sec: f64,
    /// Freshly measured fast-forward throughput (warm-up + median of 5).
    pub measured_cycles_per_sec: f64,
    /// `measured / baseline` (1.0 = exactly the baseline).
    pub ratio: f64,
    /// Allowed fraction below baseline before the check fails.
    pub tolerance: f64,
    /// A warning (not a gate failure) when the baseline claims multiple
    /// sweep threads yet its parallel sweep did not beat serial: that
    /// baseline was measured on an oversubscribed or contended host and
    /// its sweep numbers advertise a parallel win that never happened.
    pub sweep_warning: Option<String>,
}

impl PerfCheck {
    /// Whether the measured throughput clears the regression gate.
    pub fn pass(&self) -> bool {
        self.ratio >= 1.0 - self.tolerance
    }

    /// One-line verdict for the CLI (plus the sweep warning, if any).
    pub fn summary(&self) -> String {
        let line = format!(
            "perf check: fast-forward {measured:.0} cycles/s vs baseline {base:.0} cycles/s \
             ({pct:+.1}%, tolerance -{tol:.0}%) => {verdict}",
            measured = self.measured_cycles_per_sec,
            base = self.baseline_cycles_per_sec,
            pct = (self.ratio - 1.0) * 100.0,
            tol = self.tolerance * 100.0,
            verdict = if self.pass() { "ok" } else { "REGRESSION" },
        );
        match &self.sweep_warning {
            Some(w) => format!("{line}\n{w}"),
            None => line,
        }
    }
}

/// Extracts `"fast_cycles_per_sec": <number>` from a baseline report
/// (hand-rolled — the workspace is dependency-free).
///
/// # Errors
///
/// Errors when the key is missing or its value is not a finite number
/// (a `null` baseline cannot gate anything).
pub fn baseline_cycles_per_sec(json: &str) -> Result<f64, String> {
    const KEY: &str = "\"fast_cycles_per_sec\"";
    let at = json.find(KEY).ok_or_else(|| format!("baseline JSON has no {KEY} field"))?;
    let rest = json[at + KEY.len()..]
        .trim_start()
        .strip_prefix(':')
        .ok_or_else(|| format!("malformed baseline JSON after {KEY}"))?
        .trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    let value: f64 = rest[..end]
        .parse()
        .map_err(|_| format!("baseline {KEY} is not a number: '{}'", &rest[..end.min(24)]))?;
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(format!("baseline {KEY} = {value} cannot gate a check"))
    }
}

/// Extracts `"<key>": <number>` from a baseline report, returning `None`
/// when the key is absent or its value is `null` (degraded reports write
/// `null` for speedups they cannot honestly claim).
fn baseline_number(json: &str, key: &str) -> Option<f64> {
    let quoted = format!("\"{key}\"");
    let at = json.find(&quoted)?;
    let rest = json[at + quoted.len()..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok().filter(|v: &f64| v.is_finite())
}

/// Builds the sweep-consistency warning for a baseline report: a claim
/// of `threads > 1` together with `sweep_speedup <= 1` means the
/// "parallel" sweep lost to the serial one — an oversubscribed or
/// contended measurement host, not a real configuration.
fn sweep_warning_for(baseline_json: &str) -> Option<String> {
    let threads = baseline_number(baseline_json, "threads")?;
    let speedup = baseline_number(baseline_json, "sweep_speedup")?;
    if threads > 1.0 && speedup <= 1.0 {
        Some(format!(
            "warning: baseline claims {threads:.0} sweep threads but sweep_speedup is \
             {speedup:.3} — its parallel sweep did not beat serial, so it was measured \
             on an oversubscribed or contended host; regenerate the baseline"
        ))
    } else {
        None
    }
}

/// Measures the fast-forward kernel against `baseline_json` (the
/// contents of a committed `BENCH_sim.json`) and fails on a throughput
/// regression beyond 15%. A sustained untimed warm-up brings clocks,
/// caches, and the branch predictor to steady state; the verdict uses
/// the median of five timed runs, so a single noisy sample cannot fail
/// (or pass) the gate.
///
/// # Errors
///
/// Errors when the baseline JSON is unusable; a *failing measurement* is
/// a `PerfCheck` with `pass() == false`, not an `Err`.
///
/// # Panics
///
/// Panics if the benchmark workload fails to simulate.
pub fn check(baseline_json: &str, quick: bool) -> Result<PerfCheck, String> {
    let baseline = baseline_cycles_per_sec(baseline_json)?;
    let (iters, cost) = if quick { (48i64, 2_000u32) } else { (160, 10_000) };
    let nest = fig21_loop(iters);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let scheme = ProcessOriented::new(8);
    let inflate = move |_id, _pid| cost;
    let compiled = scheme.compile_with(&nest, &graph, &space, Some(&inflate));
    let config = MachineConfig {
        sync_transport: scheme.natural_transport(),
        ..MachineConfig::with_processors(8)
    };
    // Warm-up (untimed, sustained), then the gating median.
    let warm = compiled.run(&config).expect("perf workload must complete");
    let simulated_cycles = warm.stats.makespan;
    warm_up(|| drop(compiled.run(&config).expect("perf workload must complete")), 1.0);
    let seconds = median_of(5, || {
        let _ = compiled.run(&config).expect("perf workload must complete");
    });
    let measured = simulated_cycles as f64 / seconds;
    Ok(PerfCheck {
        baseline_cycles_per_sec: baseline,
        measured_cycles_per_sec: measured,
        ratio: measured / baseline,
        tolerance: 0.15,
        sweep_warning: sweep_warning_for(baseline_json),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_sane_and_serializes() {
        let r = run(true);
        assert!(r.simulated_cycles > 0);
        assert!(r.fast_seconds > 0.0 && r.reference_seconds > 0.0);
        // The acceptance bar is >= 5x on the full workload; the quick
        // smoke workload still clears a lenient 2x even on loaded CI.
        assert!(
            r.fast_forward_speedup >= 2.0,
            "fast-forward speedup {} must be >= 2x",
            r.fast_forward_speedup
        );
        let json = r.to_json();
        for key in [
            "fast_forward_speedup",
            "sweep_speedup",
            "combined_speedup",
            "simulated_cycles",
            "threads_requested",
            "threads_available",
            "degraded",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key} in {json}");
        }
        // The used count can never exceed the hardware: oversubscribing
        // CPU-bound workers is what produced a published sweep_speedup
        // of 0.969 at a claimed 4 threads.
        assert!(r.threads <= r.threads_available, "{} > {}", r.threads, r.threads_available);
        assert!(r.summary().contains("speedup"));
        if r.degraded {
            // Single-threaded host: sweep/combined must not be sold as wins.
            assert_eq!(r.threads, 1);
            assert!(json.contains("\"sweep_speedup\": null"), "{json}");
            assert!(json.contains("\"combined_speedup\": null"), "{json}");
            assert!(json.contains("\"degraded\": true"), "{json}");
            assert!(r.summary().contains("warning"), "{}", r.summary());
        } else {
            assert!(r.sweep_speedup.is_finite());
            assert!(json.contains("\"degraded\": false"), "{json}");
        }
    }

    #[test]
    fn baseline_parsing_accepts_reports_and_rejects_junk() {
        let r = run(true);
        let parsed = baseline_cycles_per_sec(&r.to_json()).unwrap();
        assert!(
            (parsed - r.fast_cycles_per_sec).abs() / r.fast_cycles_per_sec < 0.01,
            "parsed {parsed} vs reported {}",
            r.fast_cycles_per_sec
        );
        assert!(baseline_cycles_per_sec("{}").is_err());
        assert!(baseline_cycles_per_sec("{\"fast_cycles_per_sec\": null}").is_err());
        assert!(baseline_cycles_per_sec("{\"fast_cycles_per_sec\": 0.000}").is_err());
        assert!(baseline_cycles_per_sec("{\"fast_cycles_per_sec\": -3.0}").is_err());
        assert_eq!(baseline_cycles_per_sec("{\"fast_cycles_per_sec\": 2.5e9}").unwrap(), 2.5e9);
    }

    #[test]
    fn check_gates_on_the_15pct_threshold() {
        // Any honest measurement clears a floor baseline (a fresh
        // baseline's own re-measurement would be flaky on a loaded
        // host: the report's min-of-N deliberately reads above the
        // check's pessimistic median); an absurdly fast fabricated
        // baseline must fail it.
        let ok = check("{\"fast_cycles_per_sec\": 1000.0}", true).unwrap();
        assert!(ok.pass(), "{}", ok.summary());
        assert!(ok.summary().contains("ok"), "{}", ok.summary());

        let impossible = "{\"fast_cycles_per_sec\": 1e15}";
        let fail = check(impossible, true).unwrap();
        assert!(!fail.pass(), "{}", fail.summary());
        assert!(fail.summary().contains("REGRESSION"), "{}", fail.summary());
        assert!(check("not json at all", true).is_err());
    }

    #[test]
    fn check_warns_when_a_multithread_baseline_lost_its_sweep() {
        // The shipped-bug shape: 4 claimed threads, parallel slower than
        // serial. The gate still passes on kernel throughput, but the
        // verdict must carry the inconsistency warning.
        let bad = "{\"fast_cycles_per_sec\": 1000.0, \"threads\": 4, \"sweep_speedup\": 0.969}";
        let c = check(bad, true).unwrap();
        assert!(c.pass(), "{}", c.summary());
        assert!(c.sweep_warning.is_some(), "{}", c.summary());
        assert!(c.summary().contains("0.969"), "{}", c.summary());
        assert!(c.summary().contains("warning"), "{}", c.summary());

        // A healthy multi-thread baseline: no warning.
        let warning = |json: &str| sweep_warning_for(json);
        assert!(warning("{\"threads\": 4, \"sweep_speedup\": 1.8}").is_none());
        // An honest degraded baseline (1 thread, null sweep): no warning.
        assert!(warning("{\"threads\": 1, \"sweep_speedup\": null}").is_none());
        assert!(warning("{\"threads\": 1, \"sweep_speedup\": 0.97}").is_none());
        // Pre-fix reports without the keys at all: no warning.
        assert!(warning("{\"fast_cycles_per_sec\": 1000.0}").is_none());
    }

    #[test]
    fn degraded_report_nullifies_sweep_claims() {
        let mut r = run(true);
        // Force the degraded rendering path regardless of host core count.
        r.degraded = true;
        r.sweep_speedup = f64::NAN;
        r.combined_speedup = f64::NAN;
        let json = r.to_json();
        assert!(json.contains("\"sweep_speedup\": null"), "{json}");
        assert!(json.contains("\"combined_speedup\": null"), "{json}");
        assert!(json.contains("\"degraded\": true"), "{json}");
        let s = r.summary();
        assert!(s.contains("warning"), "{s}");
        assert!(!s.contains("combined speedup over per-cycle"), "{s}");
    }
}

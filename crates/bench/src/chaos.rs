//! Deterministic chaos fuzzing of the simulated machine.
//!
//! A master seed expands into thousands of random fuzz cells, each a
//! [`ChaosCase`]: a scheme, a fabric, a machine size and a randomly
//! composed [`FaultPlan`] that may mix every fault class — including
//! the unbounded ones (broadcast loss, processor fail-stop) that the
//! per-class robustness matrix sweeps one at a time. Every cell runs
//! with the full recovery ladder armed and is checked against the
//! machine's cross-cutting invariants:
//!
//! 1. **Mode bit-identity** — the fast-forward kernel and per-cycle
//!    reference stepping produce identical stats, trace and final sync
//!    state (or the identical detected failure).
//! 2. **Dependence oracle** — a run that completes must validate every
//!    dependence obligation of its compiled loop.
//! 3. **Trace monotonicity** — trace events are recorded in
//!    nondecreasing cycle order.
//! 4. **Stat conservation** — every processor's cycle breakdown sums to
//!    the makespan; every program is dispatched at least once on a
//!    completed run; fault and recovery counters stay consistent with
//!    the plan (no more fail-stops than victims planned, a
//!    reconfiguration implies a fail-stop).
//!
//! A violated cell is [`shrink`]-ed to a minimal reproducer — greedily
//! zeroing whole fault classes, then halving intensities, then shrinking
//! the workload and machine — and written as a flat, replayable JSON
//! document ([`ChaosCase::to_json`]); `datasync chaos --replay FILE`
//! re-runs it byte-exact from the JSON alone.

use datasync_loopir::analysis::analyze;
use datasync_loopir::space::IterSpace;
use datasync_loopir::workpatterns::fig21_loop;
use datasync_schemes::scheme::{CompiledLoop, Scheme};
use datasync_schemes::{
    BarrierPhased, InstanceBased, ProcessOriented, ReferenceBased, StatementOriented,
};
use datasync_sim::{
    CacheModel, CoherenceProtocol, FabricKind, FaultClass, FaultPlan, MachineConfig,
    RecoveryPolicy, SplitMix64, StepMode,
};

/// Stable scheme keys a case is generated from and replayed by (the
/// human-readable `Scheme::name` strings carry parameters and are not
/// stable identifiers).
pub const SCHEME_KEYS: [&str; 5] = ["reference", "instance", "statement", "process", "barrier"];

/// One fuzz cell: everything needed to reproduce a run byte-exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosCase {
    /// Scheme key (see [`SCHEME_KEYS`]).
    pub scheme: String,
    /// Sync-fabric backend.
    pub fabric: FabricKind,
    /// Loop iteration count (Fig 2.1 workload).
    pub iterations: i64,
    /// Processor count.
    pub processors: usize,
    /// Private-cache model under the data bus (most cells run cacheless,
    /// matching the paper's machine; the rest draw a protocol, a
    /// geometry and the sync-cacheability bit).
    pub cache: CacheModel,
    /// The fault plan, seed included.
    pub plan: FaultPlan,
}

impl ChaosCase {
    /// Deterministically generates fuzz cell `index` of master `seed`.
    /// The same `(seed, index)` always yields the same case, so a soak
    /// can fan cells across threads and still reproduce any of them.
    pub fn generate(seed: u64, index: usize) -> Self {
        let golden = 0x9e37_79b9_7f4a_7c15u64;
        let mut rng = SplitMix64::new(seed ^ golden.wrapping_mul(index as u64 + 1));
        let scheme = SCHEME_KEYS[rng.range_usize(0, SCHEME_KEYS.len() - 1)].to_string();
        // Powers of two keep the barrier scheme's butterfly well formed;
        // odd sizes are exercised by the non-barrier schemes.
        let mut processors = rng.range_usize(2, 4);
        if scheme == "barrier" && !processors.is_power_of_two() {
            processors = 4;
        }
        let mut fabric = FabricKind::ALL[rng.range_usize(0, FabricKind::ALL.len() - 1)];
        // One cell in three swaps the flat fabric for the two-level
        // clustered one, drawing a cluster count that divides P plus a
        // bridge latency and coalescing window.
        if rng.chance_pct(33) {
            let divisors: Vec<u32> = (1..=processors as u32)
                .filter(|c| (processors as u32).is_multiple_of(*c))
                .collect();
            fabric = FabricKind::Clustered {
                clusters: divisors[rng.range_usize(0, divisors.len() - 1)],
                bridge_latency: rng.range_u32(1, 4),
                coalesce_window: rng.range_u32(0, 8),
            };
        }
        let iterations = rng.range_i64(4, 14);
        // Two cells in five run with private caches, split across the
        // protocols, geometries and the sync-cacheability bit.
        let cache = if rng.chance_pct(40) {
            let protocol = CoherenceProtocol::ALL[rng.range_usize(0, 1)];
            let sets = [4u32, 16, 64][rng.range_usize(0, 2)];
            let assoc = [1u32, 2][rng.range_usize(0, 1)];
            let line = [2u32, 4][rng.range_usize(0, 1)];
            let model = CacheModel::private(protocol).geometry(sets, assoc, line);
            if rng.chance_pct(25) {
                model.sync_uncached()
            } else {
                model
            }
        } else {
            CacheModel::None
        };
        let mut plan = FaultPlan { seed: rng.next_u64(), ..FaultPlan::none() };
        // One cell in ten is a fault-free control; the rest mix classes
        // independently, each with its own intensity draw, so cells are
        // lopsided rather than uniformly shaken.
        if rng.chance_pct(90) {
            for class in FaultClass::ALL {
                if rng.chance_pct(45) {
                    plan = overlay(plan, FaultPlan::only(class, plan.seed, rng.range_u32(10, 100)));
                }
            }
        }
        ChaosCase { scheme, fabric, iterations, processors, cache, plan }
    }

    /// Compiles this case's loop under its scheme.
    fn compile(&self) -> Result<(CompiledLoop, MachineConfig), String> {
        let nest = fig21_loop(self.iterations);
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        let x = self.processors.max(2);
        let scheme: Box<dyn Scheme> = match self.scheme.as_str() {
            "reference" => Box::new(ReferenceBased::new()),
            "instance" => Box::new(InstanceBased::new()),
            "statement" => Box::new(StatementOriented::new()),
            "process" => Box::new(ProcessOriented::new(x)),
            "barrier" if self.processors.is_power_of_two() => {
                Box::new(BarrierPhased::new(self.processors))
            }
            other => return Err(format!("unknown or ill-formed scheme key `{other}`")),
        };
        let compiled = scheme.compile(&nest, &graph, &space);
        let mut config = MachineConfig {
            sync_transport: scheme.natural_transport(),
            sync_fabric: self.fabric,
            recovery: RecoveryPolicy::Full,
            cache: self.cache,
            faults: self.plan,
            ..MachineConfig::with_processors(self.processors)
        };
        config.max_cycles = config
            .max_cycles
            .max(config.scaled_max_cycles(compiled.workload.programs.len()));
        Ok((compiled, config))
    }

    /// Serializes the case as a flat JSON object, replayable byte-exact
    /// from the document alone (hand-rolled like every serializer in
    /// this dependency-free workspace).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let p = &self.plan;
        let mut out = String::from("{\n");
        let _ = write!(
            out,
            "  \"chaos_case\": 1,\n  \"scheme\": \"{}\",\n  \"fabric\": \"{}\",\n  \
             \"iterations\": {},\n  \"processors\": {},\n  \"seed\": {},\n",
            self.scheme, self.fabric, self.iterations, self.processors, p.seed
        );
        let (cache_word, sets, assoc, line, sync_bit) = match self.cache {
            CacheModel::None => ("none".to_string(), 0, 0, 0, 0),
            CacheModel::Private { protocol, sets, assoc, line_words, cache_sync, .. } => {
                (protocol.to_string(), sets, assoc, line_words, u32::from(cache_sync))
            }
        };
        let _ = writeln!(out, "  \"cache\": \"{cache_word}\",");
        let (clusters, bridge_latency, coalesce_window) = match self.fabric {
            FabricKind::Clustered { clusters, bridge_latency, coalesce_window } => {
                (clusters, bridge_latency, coalesce_window)
            }
            _ => (0, 0, 0),
        };
        for (key, val) in [
            ("clusters", clusters),
            ("bridge_latency", bridge_latency),
            ("coalesce_window", coalesce_window),
            ("cache_sets", sets),
            ("cache_assoc", assoc),
            ("cache_line", line),
            ("cache_sync", sync_bit),
            ("broadcast_delay_pct", p.broadcast_delay_pct),
            ("broadcast_delay_max", p.broadcast_delay_max),
            ("broadcast_reorder_pct", p.broadcast_reorder_pct),
            ("broadcast_drop_pct", p.broadcast_drop_pct),
            ("max_redeliveries", p.max_redeliveries),
            ("stale_image_pct", p.stale_image_pct),
            ("stale_window_max", p.stale_window_max),
            ("stall_mean_interval", p.stall_mean_interval),
            ("stall_max", p.stall_max),
            ("data_jitter_pct", p.data_jitter_pct),
            ("data_jitter_max", p.data_jitter_max),
            ("broadcast_loss_pct", p.broadcast_loss_pct),
            ("fail_stop_procs", p.fail_stop_procs),
            ("fail_stop_window", p.fail_stop_window),
        ] {
            let _ = writeln!(out, "  \"{key}\": {val},");
        }
        out.truncate(out.trim_end_matches(",\n").len());
        out.push_str("\n}\n");
        out
    }

    /// Parses a document written by [`ChaosCase::to_json`].
    ///
    /// # Errors
    ///
    /// Reports the first missing or malformed field.
    pub fn from_json(doc: &str) -> Result<Self, String> {
        fn num(doc: &str, key: &str) -> Result<u64, String> {
            let tag = format!("\"{key}\":");
            let rest = doc
                .split(&tag)
                .nth(1)
                .ok_or_else(|| format!("missing field `{key}`"))?
                .trim_start();
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            digits.parse().map_err(|_| format!("malformed number for `{key}`"))
        }
        fn text(doc: &str, key: &str) -> Result<String, String> {
            let tag = format!("\"{key}\":");
            let rest = doc
                .split(&tag)
                .nth(1)
                .ok_or_else(|| format!("missing field `{key}`"))?
                .trim_start();
            let body = rest
                .strip_prefix('"')
                .and_then(|r| r.split('"').next())
                .ok_or_else(|| format!("malformed string for `{key}`"))?;
            Ok(body.to_string())
        }
        let n32 = |key: &str| num(doc, key).map(|v| v as u32);
        if num(doc, "chaos_case")? != 1 {
            return Err("unsupported chaos_case version".into());
        }
        let fabric_name = text(doc, "fabric")?;
        let mut fabric = FabricKind::parse(&fabric_name)
            .ok_or_else(|| format!("unknown fabric `{fabric_name}`"))?;
        // Reproducers written before the clustered fabric existed (and
        // hand-written docs) may omit the geometry: keep `parse`'s
        // defaults for any missing field.
        if let FabricKind::Clustered { clusters, bridge_latency, coalesce_window } = &mut fabric {
            if let Ok(v) = n32("clusters") {
                *clusters = v;
            }
            if let Ok(v) = n32("bridge_latency") {
                *bridge_latency = v;
            }
            if let Ok(v) = n32("coalesce_window") {
                *coalesce_window = v;
            }
        }
        // Pre-cache reproducer files carry no cache fields: cacheless.
        let cache = match text(doc, "cache").ok().as_deref() {
            None | Some("none") => CacheModel::None,
            Some(word) => {
                let protocol = CoherenceProtocol::parse(word)
                    .ok_or_else(|| format!("unknown cache protocol `{word}`"))?;
                let model = CacheModel::private(protocol).geometry(
                    n32("cache_sets")?,
                    n32("cache_assoc")?,
                    n32("cache_line")?,
                );
                if num(doc, "cache_sync")? == 0 {
                    model.sync_uncached()
                } else {
                    model
                }
            }
        };
        Ok(ChaosCase {
            scheme: text(doc, "scheme")?,
            fabric,
            iterations: num(doc, "iterations")? as i64,
            processors: num(doc, "processors")? as usize,
            cache,
            plan: FaultPlan {
                seed: num(doc, "seed")?,
                broadcast_delay_pct: n32("broadcast_delay_pct")?,
                broadcast_delay_max: n32("broadcast_delay_max")?,
                broadcast_reorder_pct: n32("broadcast_reorder_pct")?,
                broadcast_drop_pct: n32("broadcast_drop_pct")?,
                max_redeliveries: n32("max_redeliveries")?,
                stale_image_pct: n32("stale_image_pct")?,
                stale_window_max: n32("stale_window_max")?,
                stall_mean_interval: n32("stall_mean_interval")?,
                stall_max: n32("stall_max")?,
                data_jitter_pct: n32("data_jitter_pct")?,
                data_jitter_max: n32("data_jitter_max")?,
                broadcast_loss_pct: n32("broadcast_loss_pct")?,
                fail_stop_procs: n32("fail_stop_procs")?,
                fail_stop_window: n32("fail_stop_window")?,
            },
        })
    }
}

/// Merges one single-class plan into an accumulating plan (field-wise
/// max, the same composition rule [`FaultPlan::chaos`] uses — but
/// without its bounded-classes-only restriction: the fuzzer *wants* the
/// unbounded classes in the mix).
fn overlay(a: FaultPlan, b: FaultPlan) -> FaultPlan {
    FaultPlan {
        seed: a.seed,
        broadcast_delay_pct: a.broadcast_delay_pct.max(b.broadcast_delay_pct),
        broadcast_delay_max: a.broadcast_delay_max.max(b.broadcast_delay_max),
        broadcast_reorder_pct: a.broadcast_reorder_pct.max(b.broadcast_reorder_pct),
        broadcast_drop_pct: a.broadcast_drop_pct.max(b.broadcast_drop_pct),
        max_redeliveries: a.max_redeliveries.max(b.max_redeliveries),
        stale_image_pct: a.stale_image_pct.max(b.stale_image_pct),
        stale_window_max: a.stale_window_max.max(b.stale_window_max),
        stall_mean_interval: a.stall_mean_interval.max(b.stall_mean_interval),
        stall_max: a.stall_max.max(b.stall_max),
        data_jitter_pct: a.data_jitter_pct.max(b.data_jitter_pct),
        data_jitter_max: a.data_jitter_max.max(b.data_jitter_max),
        broadcast_loss_pct: a.broadcast_loss_pct.max(b.broadcast_loss_pct),
        fail_stop_procs: a.fail_stop_procs.max(b.fail_stop_procs),
        fail_stop_window: a.fail_stop_window.max(b.fail_stop_window),
    }
}

/// Zeroes every field of `class` in the plan (the shrinker's coarsest
/// move: drop a whole fault class).
fn without_class(mut plan: FaultPlan, class: FaultClass) -> FaultPlan {
    match class {
        FaultClass::BroadcastDelay => {
            plan.broadcast_delay_pct = 0;
            plan.broadcast_delay_max = 0;
        }
        FaultClass::BroadcastReorder => plan.broadcast_reorder_pct = 0,
        FaultClass::BroadcastDrop => {
            plan.broadcast_drop_pct = 0;
            plan.max_redeliveries = 0;
        }
        FaultClass::StaleImage => {
            plan.stale_image_pct = 0;
            plan.stale_window_max = 0;
        }
        FaultClass::ProcStall => {
            plan.stall_mean_interval = 0;
            plan.stall_max = 0;
        }
        FaultClass::DataJitter => {
            plan.data_jitter_pct = 0;
            plan.data_jitter_max = 0;
        }
        FaultClass::BroadcastLoss => plan.broadcast_loss_pct = 0,
        FaultClass::ProcFailStop => {
            plan.fail_stop_procs = 0;
            plan.fail_stop_window = 0;
        }
    }
    plan
}

/// Runs one fuzz cell and checks every machine invariant.
///
/// # Errors
///
/// Returns a human-readable description of the first violated invariant.
/// A *detected* failure (deadlock proof or timeout) is not a violation
/// as long as both stepping modes report it identically — the fuzzer
/// polices silent wrongness, not honest wedges.
pub fn run_case(case: &ChaosCase) -> Result<(), String> {
    let (compiled, config) = case.compile()?;
    let fast = compiled.run_with(&config, StepMode::FastForward);
    let reference = compiled.run_with(&config, StepMode::Reference);
    let out = match (fast, reference) {
        (Ok(f), Ok(r)) => {
            if f.stats != r.stats {
                return Err("mode divergence: fast-forward and reference stats differ".into());
            }
            if f.trace != r.trace {
                return Err("mode divergence: fast-forward and reference traces differ".into());
            }
            if f.sync_final != r.sync_final {
                return Err("mode divergence: final sync state differs".into());
            }
            f
        }
        (Err(f), Err(r)) => {
            return if f == r {
                Ok(())
            } else {
                Err(format!(
                    "mode divergence: fast-forward failed with {f:?}, reference with {r:?}"
                ))
            };
        }
        (f, r) => {
            return Err(format!(
                "mode divergence: fast-forward ok = {}, reference ok = {}",
                f.is_ok(),
                r.is_ok()
            ));
        }
    };
    // Dependence oracle: a completed run must order every obligation.
    if let Some(first) = compiled.validate(&out).into_iter().next() {
        return Err(format!("order violation: {first}"));
    }
    // Trace monotonicity: events are recorded as cycles advance.
    if let Some(w) = out.trace.events().windows(2).find(|w| w[1].cycle < w[0].cycle) {
        return Err(format!(
            "trace regression: event at cycle {} recorded after cycle {}",
            w[1].cycle, w[0].cycle
        ));
    }
    // Stat conservation: each processor's breakdown partitions the run.
    for (i, p) in out.stats.procs.iter().enumerate() {
        let total = p.busy + p.spin + p.blocked + p.idle + p.stalled + p.dead;
        if total != out.stats.makespan {
            return Err(format!(
                "stat leak: proc {i} breakdown sums to {total}, makespan {}",
                out.stats.makespan
            ));
        }
    }
    if out.stats.dispatched < compiled.workload.programs.len() as u64 {
        return Err(format!(
            "lost work: only {} dispatches for {} programs on a completed run",
            out.stats.dispatched,
            compiled.workload.programs.len()
        ));
    }
    if out.stats.faults.fail_stops > u64::from(case.plan.fail_stop_procs) {
        return Err(format!(
            "fault overrun: {} fail-stops, plan allowed {}",
            out.stats.faults.fail_stops, case.plan.fail_stop_procs
        ));
    }
    if out.stats.recovery.reconfigured() && out.stats.faults.fail_stops == 0 {
        return Err("phantom reconfiguration: rescue rungs fired with no fail-stop".into());
    }
    // Broadcast conservation on fault-free control cells (faults add
    // redeliveries and refresh grants on top, so only the clean cells
    // pin the identities exactly): issued ops fold into broadcasts +
    // coalesced, and on the clustered fabric every broadcast either
    // crosses the bridge or aggregates into a pending forward.
    let fault_free = case.plan == FaultPlan { seed: case.plan.seed, ..FaultPlan::none() };
    if fault_free {
        if out.stats.sync_ops_issued != out.stats.sync_broadcasts + out.stats.coalesced_writes {
            return Err(format!(
                "conservation leak: {} issued != {} broadcasts + {} coalesced",
                out.stats.sync_ops_issued, out.stats.sync_broadcasts, out.stats.coalesced_writes
            ));
        }
        if case.fabric.is_clustered() {
            if out.stats.sync_broadcasts != out.stats.bridge_broadcasts + out.stats.bridge_coalesced
            {
                return Err(format!(
                    "bridge conservation leak: {} broadcasts != {} bridged + {} aggregated",
                    out.stats.sync_broadcasts,
                    out.stats.bridge_broadcasts,
                    out.stats.bridge_coalesced
                ));
            }
        } else if out.stats.bridge_broadcasts + out.stats.bridge_coalesced != 0 {
            return Err("phantom bridge traffic on a flat fabric".into());
        }
    }
    Ok(())
}

/// Greedily shrinks a failing case to a minimal reproducer under an
/// arbitrary failure predicate: drop whole fault classes, then halve
/// every intensity, then shrink the workload and the machine —
/// accepting each move only while the predicate still fails, until a
/// full pass changes nothing.
pub fn shrink_with(case: &ChaosCase, fails: impl Fn(&ChaosCase) -> bool) -> ChaosCase {
    let mut current = case.clone();
    loop {
        let mut improved = false;
        // Coarsest first: remove whole fault classes.
        for class in FaultClass::ALL {
            let cand = ChaosCase { plan: without_class(current.plan, class), ..current.clone() };
            if cand.plan != current.plan && fails(&cand) {
                current = cand;
                improved = true;
            }
        }
        // Halve every surviving intensity and magnitude.
        let p = current.plan;
        let halved = FaultPlan {
            seed: p.seed,
            broadcast_delay_pct: p.broadcast_delay_pct / 2,
            broadcast_delay_max: p.broadcast_delay_max / 2,
            broadcast_reorder_pct: p.broadcast_reorder_pct / 2,
            broadcast_drop_pct: p.broadcast_drop_pct / 2,
            max_redeliveries: p.max_redeliveries,
            stale_image_pct: p.stale_image_pct / 2,
            stale_window_max: p.stale_window_max / 2,
            stall_mean_interval: p.stall_mean_interval.saturating_mul(2).min(8000),
            stall_max: p.stall_max / 2,
            data_jitter_pct: p.data_jitter_pct / 2,
            data_jitter_max: p.data_jitter_max / 2,
            broadcast_loss_pct: p.broadcast_loss_pct / 2,
            fail_stop_procs: p.fail_stop_procs.min(1),
            fail_stop_window: p.fail_stop_window,
        };
        let cand = ChaosCase { plan: halved, ..current.clone() };
        if cand.plan != current.plan && fails(&cand) {
            current = cand;
            improved = true;
        }
        // Drop the cache layer: a reproducer that still fails on the
        // cacheless machine is simpler to reason about.
        if current.cache.enabled() {
            let cand = ChaosCase { cache: CacheModel::None, ..current.clone() };
            if fails(&cand) {
                current = cand;
                improved = true;
            }
        }
        // Flatten the fabric: a reproducer on the plain dedicated bus
        // beats a two-level one.
        if current.fabric.is_clustered() {
            let cand = ChaosCase { fabric: FabricKind::Dedicated, ..current.clone() };
            if fails(&cand) {
                current = cand;
                improved = true;
            }
        }
        // Shrink the workload, then the machine.
        if current.iterations > 2 {
            let cand = ChaosCase { iterations: current.iterations / 2, ..current.clone() };
            if fails(&cand) {
                current = cand;
                improved = true;
            }
        }
        if current.processors > 2 {
            let mut cand = ChaosCase { processors: 2, ..current.clone() };
            // Keep a surviving clustered geometry legal on the smaller
            // machine (the cluster count must divide P).
            if let FabricKind::Clustered { clusters, .. } = &mut cand.fabric {
                *clusters = (*clusters).min(2);
            }
            if fails(&cand) {
                current = cand;
                improved = true;
            }
        }
        if !improved {
            return current;
        }
    }
}

/// [`shrink_with`] under the real failure predicate ([`run_case`]).
pub fn shrink(case: &ChaosCase) -> ChaosCase {
    shrink_with(case, |c| run_case(c).is_err())
}

/// One soak failure: the original cell, what it violated, and its
/// shrunk minimal reproducer.
#[derive(Debug, Clone)]
pub struct ChaosFailure {
    /// Index of the cell in the soak (`ChaosCase::generate(seed, index)`).
    pub index: usize,
    /// The violated invariant, human-readable.
    pub what: String,
    /// The cell as generated.
    pub case: ChaosCase,
    /// The shrunk minimal reproducer.
    pub minimal: ChaosCase,
}

/// A completed soak run.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Cells run.
    pub cases: usize,
    /// Master seed the cells expanded from.
    pub seed: u64,
    /// Invariant violations, each with its minimal reproducer.
    pub failures: Vec<ChaosFailure>,
}

/// Runs `cases` fuzz cells expanded from `seed`, in parallel, and
/// shrinks every violation to a minimal reproducer.
pub fn soak(cases: usize, seed: u64) -> SoakReport {
    let jobs: Vec<usize> = (0..cases).collect();
    let failures = datasync_core::par::par_map(jobs, |index| {
        let case = ChaosCase::generate(seed, index);
        run_case(&case).err().map(|what| (index, case, what))
    })
    .into_iter()
    .flatten()
    .map(|(index, case, what)| {
        let minimal = shrink(&case);
        ChaosFailure { index, what, case, minimal }
    })
    .collect();
    SoakReport { cases, seed, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_varied() {
        let a = ChaosCase::generate(1989, 7);
        let b = ChaosCase::generate(1989, 7);
        assert_eq!(a, b, "same (seed, index) must yield the same cell");
        let cells: Vec<ChaosCase> = (0..40).map(|i| ChaosCase::generate(1989, i)).collect();
        let schemes: std::collections::HashSet<&str> =
            cells.iter().map(|c| c.scheme.as_str()).collect();
        assert!(schemes.len() >= 3, "40 cells should span several schemes: {schemes:?}");
        assert!(
            cells.iter().any(|c| c.plan.fail_stop_procs > 0),
            "the fail-stop class must appear in the mix"
        );
        assert!(
            cells.iter().any(|c| !c.plan.is_active()),
            "some cells should be fault-free controls"
        );
        assert!(cells.iter().any(|c| c.cache.enabled()), "the cache axis must appear in the mix");
        assert!(cells.iter().any(|c| !c.cache.enabled()), "most cells should stay cacheless");
        assert!(
            cells
                .iter()
                .any(|c| matches!(c.cache, CacheModel::Private { cache_sync: false, .. })),
            "the sync-uncached bit should appear in the mix"
        );
    }

    #[test]
    fn case_json_round_trips() {
        for index in [0usize, 3, 11] {
            let case = ChaosCase::generate(42, index);
            let doc = case.to_json();
            let back = ChaosCase::from_json(&doc).expect("parse own serialization");
            assert_eq!(case, back, "round trip changed the case:\n{doc}");
        }
        assert!(ChaosCase::from_json("{}").is_err());
    }

    #[test]
    fn pre_cache_reproducer_files_still_parse_as_cacheless() {
        let case = ChaosCase::generate(42, 1);
        let doc = case.to_json();
        // A PR-7-era reproducer has no cache fields at all.
        let stripped: String =
            doc.lines().filter(|l| !l.contains("cache")).collect::<Vec<_>>().join("\n");
        let back = ChaosCase::from_json(&stripped).expect("parse stripped doc");
        assert_eq!(back.cache, CacheModel::None);
        assert_eq!(back.plan, case.plan);
        assert_eq!(back.scheme, case.scheme);
    }

    #[test]
    fn clustered_cells_appear_with_legal_geometry_and_round_trip() {
        let cells: Vec<ChaosCase> = (0..60).map(|i| ChaosCase::generate(1989, i)).collect();
        let clustered: Vec<&ChaosCase> = cells.iter().filter(|c| c.fabric.is_clustered()).collect();
        assert!(!clustered.is_empty(), "the clustered-fabric axis must appear in the mix");
        for case in clustered {
            let FabricKind::Clustered { clusters, .. } = case.fabric else { unreachable!() };
            assert!(
                clusters >= 1 && (case.processors as u32).is_multiple_of(clusters),
                "clusters ({clusters}) must divide P ({})",
                case.processors
            );
            let doc = case.to_json();
            let back = ChaosCase::from_json(&doc).expect("parse clustered doc");
            assert_eq!(*case, back, "round trip changed the clustered case:\n{doc}");
        }
    }

    #[test]
    fn pre_clustered_reproducer_files_still_parse() {
        // A pre-clustered-era reproducer carries no cluster fields at all.
        let case = (0..60)
            .map(|i| ChaosCase::generate(7, i))
            .find(|c| !c.fabric.is_clustered())
            .expect("some cells stay on flat fabrics");
        let strip = |doc: &str| -> String {
            doc.lines()
                .filter(|l| {
                    !l.contains("clusters")
                        && !l.contains("bridge_latency")
                        && !l.contains("coalesce_window")
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        let doc = case.to_json();
        let back = ChaosCase::from_json(&strip(&doc)).expect("parse stripped flat doc");
        assert_eq!(back, case);
        // A hand-written clustered doc without geometry fields keeps the
        // parse defaults rather than erroring.
        let clustered_doc =
            doc.replace(&format!("\"fabric\": \"{}\"", case.fabric), "\"fabric\": \"clustered\"");
        let back = ChaosCase::from_json(&strip(&clustered_doc)).expect("parse geometry-free doc");
        assert_eq!(back.fabric, FabricKind::clustered(4));
    }

    #[test]
    fn shrinker_flattens_the_fabric_and_keeps_cluster_geometry_legal() {
        let mut case = ChaosCase::generate(1989, 0);
        case.processors = 4;
        case.fabric = FabricKind::Clustered { clusters: 4, bridge_latency: 3, coalesce_window: 8 };
        // A predicate indifferent to the fabric lets the shrinker flatten it.
        let min = shrink_with(&case, |_| true);
        assert!(!min.fabric.is_clustered(), "shrinker should flatten the fabric: {min:?}");
        // A predicate that needs the clustered fabric forces the P move to
        // keep the cluster count dividing the shrunk machine.
        let min = shrink_with(&case, |c| c.fabric.is_clustered());
        assert_eq!(min.processors, 2);
        let FabricKind::Clustered { clusters, .. } = min.fabric else {
            panic!("fabric must stay clustered under this predicate")
        };
        assert_eq!(2 % clusters, 0, "clusters ({clusters}) must divide the shrunk P");
    }

    #[test]
    fn replay_runs_from_the_json_alone() {
        let case = ChaosCase::generate(7, 5);
        let doc = case.to_json();
        let back = ChaosCase::from_json(&doc).expect("parse");
        assert_eq!(run_case(&back).is_ok(), run_case(&case).is_ok());
    }

    #[test]
    fn smoke_soak_finds_no_violations() {
        let report = soak(50, 1989);
        assert_eq!(report.cases, 50);
        let first = report.failures.first().map(|f| {
            format!("cell {}: {}\nminimal repro:\n{}", f.index, f.what, f.minimal.to_json())
        });
        assert!(report.failures.is_empty(), "{}", first.unwrap_or_default());
    }

    #[test]
    fn shrinker_reaches_a_minimal_reproducer() {
        // A synthetic violation predicate lets the shrink path be
        // demonstrated deterministically without a machine bug: "fails"
        // whenever the stale-image class is active on a big-enough run.
        let case = ChaosCase::generate(1989, 2);
        let guilty =
            |c: &ChaosCase| c.plan.stale_image_pct > 0 && c.iterations >= 3 && c.processors >= 2;
        let seeded = ChaosCase {
            plan: overlay(case.plan, FaultPlan::only(FaultClass::StaleImage, case.plan.seed, 80)),
            ..case
        };
        assert!(guilty(&seeded));
        let minimal = shrink_with(&seeded, guilty);
        assert!(guilty(&minimal), "shrinking must preserve the failure");
        // Every innocent class is gone...
        assert_eq!(minimal.plan.broadcast_delay_pct, 0);
        assert_eq!(minimal.plan.broadcast_reorder_pct, 0);
        assert_eq!(minimal.plan.broadcast_drop_pct, 0);
        assert_eq!(minimal.plan.data_jitter_pct, 0);
        assert_eq!(minimal.plan.broadcast_loss_pct, 0);
        assert_eq!(minimal.plan.fail_stop_procs, 0);
        assert_eq!(minimal.plan.stall_mean_interval, 0);
        // ...the guilty one is minimized but present, on a tiny machine
        // stripped of innocent hardware (the cache layer included).
        assert!(minimal.plan.stale_image_pct > 0);
        assert!(minimal.plan.stale_image_pct <= 2, "halving should bottom out near zero");
        assert_eq!(minimal.processors, 2);
        assert!(minimal.iterations <= 3);
        assert_eq!(minimal.cache, CacheModel::None, "the cache drop move should fire");
        // And the reproducer serializes for replay.
        let doc = minimal.to_json();
        assert_eq!(ChaosCase::from_json(&doc).expect("parse"), minimal);
    }
}

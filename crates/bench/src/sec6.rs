//! E11 / Section 6 — synchronization-bus traffic: broadcasts vs data
//! traffic, and the write-coalescing optimization.

use crate::table::{f, Table};
use datasync_loopir::analysis::analyze;
use datasync_loopir::space::IterSpace;
use datasync_loopir::workpatterns::fig21_loop;
use datasync_schemes::scheme::Scheme;
use datasync_schemes::{BarrierPhased, ProcessOriented, StatementOriented};
use datasync_sim::{FabricKind, MachineConfig};

/// Measures the process-oriented scheme's bus traffic with and without
/// posted-write coalescing, at two sync-bus speeds (a slow bus queues
/// more writes, giving coalescing more to absorb).
pub fn run_experiment(n: i64, procs: usize) -> Table {
    let nest = fig21_loop(n);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let scheme = ProcessOriented::new(2 * procs);
    let compiled = scheme.compile(&nest, &graph, &space);

    let mut t = Table::new(
        "E11 / Sec 6",
        &format!("sync-bus traffic and write coalescing (Fig 2.1 loop, N={n}, P={procs})"),
        &[
            "sync bus latency",
            "coalescing",
            "broadcasts",
            "saved",
            "data tx",
            "sync/data ratio",
            "makespan",
        ],
    );
    for bus_latency in [1u32, 24] {
        for coalesce in [false, true] {
            let config = MachineConfig {
                processors: procs,
                sync_bus_latency: bus_latency,
                coalesce_sync_writes: coalesce,
                ..MachineConfig::default()
            };
            let out = compiled.run(&config).expect("simulation failed");
            assert!(compiled.validate(&out).is_empty(), "order violated");
            t.row(vec![
                bus_latency.to_string(),
                if coalesce { "on".into() } else { "off".into() },
                out.stats.sync_broadcasts.to_string(),
                out.stats.coalesced_writes.to_string(),
                out.stats.data_transactions.to_string(),
                f(out.stats.sync_broadcasts as f64 / out.stats.data_transactions as f64),
                out.stats.makespan.to_string(),
            ]);
        }
    }
    t.note("Paper (Section 6): 'since a PC needs to be updated only after the source statement is completed, the amount of such traffic is no worse than that in the main data bus'; a later write to the same PC covers a queued one, 'thus avoid the extra bus traffic'.");
    t.note("A fast bus never queues writes, so coalescing is idle; a congested bus shows the optimization's full effect.");
    t
}

/// The dedicated-transport schemes, the only ones whose sync traffic
/// rides the fabric under ablation (reference/instance schemes sync
/// through shared memory and never touch the sync bus).
fn fabric_roster(procs: usize) -> Vec<Box<dyn Scheme>> {
    let mut v: Vec<Box<dyn Scheme>> =
        vec![Box::new(StatementOriented::new()), Box::new(ProcessOriented::new(2 * procs))];
    if procs.is_power_of_two() {
        v.push(Box::new(BarrierPhased::new(procs)));
    }
    v
}

/// E11b / Section 6 ablation — what the dedicated sync bus buys.
///
/// Every dedicated-transport scheme runs on three fabrics: the paper's
/// dedicated bus, a shared fabric where broadcasts arbitrate against
/// data traffic on the one physical bus (the §6 design the dedicated
/// bus avoids), and a zero-latency oracle bounding what any fabric
/// could achieve. Per scheme, makespan must order
/// ideal ≤ dedicated ≤ shared.
pub fn fabric_ablation(n: i64, procs: usize) -> Table {
    let nest = fig21_loop(n);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let mut t = Table::new(
        "E11b / Sec 6",
        &format!("sync-fabric ablation (Fig 2.1 loop, N={n}, P={procs})"),
        &["scheme", "fabric", "makespan", "broadcasts", "sync occ", "data occ", "vs dedicated"],
    );
    for scheme in fabric_roster(procs) {
        let compiled = scheme.compile(&nest, &graph, &space);
        let mut dedicated_makespan = 0u64;
        for kind in FabricKind::ALL {
            let config = MachineConfig {
                sync_transport: scheme.natural_transport(),
                ..MachineConfig::with_processors(procs)
            }
            .fabric(kind);
            let out = compiled.run(&config).expect("simulation failed");
            assert!(compiled.validate(&out).is_empty(), "order violated");
            if kind == FabricKind::Dedicated {
                dedicated_makespan = out.stats.makespan;
            }
            t.row(vec![
                scheme.name(),
                kind.to_string(),
                out.stats.makespan.to_string(),
                out.stats.sync_broadcasts.to_string(),
                f(out.metrics.sync_bus_occupancy(out.stats.makespan)),
                f(out.metrics.data_bus_occupancy(out.stats.makespan)),
                f(out.stats.makespan as f64 / dedicated_makespan as f64),
            ]);
        }
    }
    t.note("Paper (Section 6): a dedicated synchronization bus keeps PC/SC broadcasts off the main data bus; sharing one bus makes every broadcast steal a data-transfer slot.");
    t.note("The ideal fabric delivers broadcasts instantly and bounds the improvement any bus design could still buy.");
    t
}

/// The fabric ablation as a JSON document (the `BENCH_fabric.json`
/// artifact): one record per scheme × fabric with the raw counters the
/// table formats, so CI diffs can catch regressions numerically.
pub fn fabric_json(n: i64, procs: usize) -> String {
    let t = fabric_ablation(n, procs);
    let mut rows = String::new();
    for (i, r) in t.rows.iter().enumerate() {
        let sep = if i + 1 < t.rows.len() { "," } else { "" };
        rows.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"fabric\": \"{}\", \"makespan\": {}, \
             \"broadcasts\": {}, \"sync_occupancy\": {}, \"data_occupancy\": {}, \
             \"vs_dedicated\": {}}}{sep}\n",
            r[0], r[1], r[2], r[3], r[4], r[5], r[6]
        ));
    }
    format!(
        "{{\n  \"experiment\": \"sec6 sync-fabric ablation\",\n  \"loop\": \"fig21\",\n  \
         \"n\": {n},\n  \"procs\": {procs},\n  \
         \"fabrics\": [\"dedicated\", \"shared\", \"ideal\"],\n  \"rows\": [\n{rows}  ]\n}}\n"
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn sync_traffic_at_most_data_traffic_and_coalescing_saves() {
        let t = super::run_experiment(48, 4);
        for r in &t.rows {
            let ratio: f64 = r[5].parse().unwrap();
            assert!(ratio <= 1.0, "sync/data ratio {ratio} exceeds 1");
        }
        // On the congested bus, coalescing absorbs queued writes and
        // recovers most of the lost makespan.
        let slow_on = t.rows.iter().find(|r| r[0] == "24" && r[1] == "on").unwrap();
        let saved: u64 = slow_on[3].parse().unwrap();
        assert!(saved > 0, "congested bus with coalescing should save broadcasts");
        let slow_off = t.rows.iter().find(|r| r[0] == "24" && r[1] == "off").unwrap();
        let b_on: u64 = slow_on[2].parse().unwrap();
        let b_off: u64 = slow_off[2].parse().unwrap();
        assert!(b_on < b_off, "coalescing must reduce broadcasts ({b_on} vs {b_off})");
        let m_on: u64 = slow_on[6].parse().unwrap();
        let m_off: u64 = slow_off[6].parse().unwrap();
        assert!(m_on < m_off, "coalescing must improve makespan ({m_on} vs {m_off})");
    }

    #[test]
    fn fabric_ablation_orders_ideal_dedicated_shared() {
        let t = super::fabric_ablation(32, 4);
        // 3 dedicated-transport schemes x 3 fabrics.
        assert_eq!(t.rows.len(), 9);
        for chunk in t.rows.chunks(3) {
            let makespan = |fabric: &str| -> u64 {
                chunk.iter().find(|r| r[1] == fabric).unwrap()[2].parse().unwrap()
            };
            let (ded, shr, idl) = (makespan("dedicated"), makespan("shared"), makespan("ideal"));
            let scheme = &chunk[0][0];
            assert!(idl <= ded, "{scheme}: ideal {idl} beat by dedicated {ded}");
            assert!(ded <= shr, "{scheme}: dedicated {ded} beat by shared {shr}");
            // The oracle never touches a bus; the shared fabric must pay
            // for its broadcasts in data-bus time.
            let ideal_row = chunk.iter().find(|r| r[1] == "ideal").unwrap();
            assert_eq!(ideal_row[4], "0.00", "{scheme}: ideal fabric held the sync bus");
        }
        // At least one scheme must actually show the §6 gap, or the
        // ablation says nothing.
        let gap = t.rows.chunks(3).any(|c| {
            c.iter().find(|r| r[1] == "shared").unwrap()[2]
                != c.iter().find(|r| r[1] == "dedicated").unwrap()[2]
        });
        assert!(gap, "no scheme separated shared from dedicated");
    }

    #[test]
    fn fabric_json_is_complete() {
        let json = super::fabric_json(16, 4);
        for key in [
            "\"experiment\"",
            "\"rows\"",
            "\"dedicated\"",
            "\"shared\"",
            "\"ideal\"",
            "\"vs_dedicated\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches("{\"scheme\"").count(), 9);
    }
}

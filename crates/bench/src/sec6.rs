//! E11 / Section 6 — synchronization-bus traffic: broadcasts vs data
//! traffic, and the write-coalescing optimization.

use crate::table::{f, Table};
use datasync_loopir::analysis::analyze;
use datasync_loopir::space::IterSpace;
use datasync_loopir::workpatterns::fig21_loop;
use datasync_schemes::scheme::Scheme;
use datasync_schemes::ProcessOriented;
use datasync_sim::MachineConfig;

/// Measures the process-oriented scheme's bus traffic with and without
/// posted-write coalescing, at two sync-bus speeds (a slow bus queues
/// more writes, giving coalescing more to absorb).
pub fn run_experiment(n: i64, procs: usize) -> Table {
    let nest = fig21_loop(n);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let scheme = ProcessOriented::new(2 * procs);
    let compiled = scheme.compile(&nest, &graph, &space);

    let mut t = Table::new(
        "E11 / Sec 6",
        &format!("sync-bus traffic and write coalescing (Fig 2.1 loop, N={n}, P={procs})"),
        &[
            "sync bus latency",
            "coalescing",
            "broadcasts",
            "saved",
            "data tx",
            "sync/data ratio",
            "makespan",
        ],
    );
    for bus_latency in [1u32, 24] {
        for coalesce in [false, true] {
            let config = MachineConfig {
                processors: procs,
                sync_bus_latency: bus_latency,
                coalesce_sync_writes: coalesce,
                ..MachineConfig::default()
            };
            let out = compiled.run(&config).expect("simulation failed");
            assert!(compiled.validate(&out).is_empty(), "order violated");
            t.row(vec![
                bus_latency.to_string(),
                if coalesce { "on".into() } else { "off".into() },
                out.stats.sync_broadcasts.to_string(),
                out.stats.coalesced_writes.to_string(),
                out.stats.data_transactions.to_string(),
                f(out.stats.sync_broadcasts as f64 / out.stats.data_transactions as f64),
                out.stats.makespan.to_string(),
            ]);
        }
    }
    t.note("Paper (Section 6): 'since a PC needs to be updated only after the source statement is completed, the amount of such traffic is no worse than that in the main data bus'; a later write to the same PC covers a queued one, 'thus avoid the extra bus traffic'.");
    t.note("A fast bus never queues writes, so coalescing is idle; a congested bus shows the optimization's full effect.");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn sync_traffic_at_most_data_traffic_and_coalescing_saves() {
        let t = super::run_experiment(48, 4);
        for r in &t.rows {
            let ratio: f64 = r[5].parse().unwrap();
            assert!(ratio <= 1.0, "sync/data ratio {ratio} exceeds 1");
        }
        // On the congested bus, coalescing absorbs queued writes and
        // recovers most of the lost makespan.
        let slow_on = t.rows.iter().find(|r| r[0] == "24" && r[1] == "on").unwrap();
        let saved: u64 = slow_on[3].parse().unwrap();
        assert!(saved > 0, "congested bus with coalescing should save broadcasts");
        let slow_off = t.rows.iter().find(|r| r[0] == "24" && r[1] == "off").unwrap();
        let b_on: u64 = slow_on[2].parse().unwrap();
        let b_off: u64 = slow_off[2].parse().unwrap();
        assert!(b_on < b_off, "coalescing must reduce broadcasts ({b_on} vs {b_off})");
        let m_on: u64 = slow_on[6].parse().unwrap();
        let m_off: u64 = slow_off[6].parse().unwrap();
        assert!(m_on < m_off, "coalescing must improve makespan ({m_on} vs {m_off})");
    }
}

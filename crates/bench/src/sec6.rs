//! E11 / Section 6 — synchronization-bus traffic: broadcasts vs data
//! traffic, and the write-coalescing optimization.

use crate::table::{f, Table};
use datasync_loopir::analysis::analyze;
use datasync_loopir::space::IterSpace;
use datasync_loopir::workpatterns::fig21_loop;
use datasync_schemes::scheme::Scheme;
use datasync_schemes::{
    BarrierPhased, InstanceBased, ProcessOriented, ReferenceBased, StatementOriented,
};
use datasync_sim::{CacheModel, CoherenceProtocol, FabricKind, MachineConfig};

/// Measures the process-oriented scheme's bus traffic with and without
/// posted-write coalescing, at two sync-bus speeds (a slow bus queues
/// more writes, giving coalescing more to absorb).
pub fn run_experiment(n: i64, procs: usize) -> Table {
    let nest = fig21_loop(n);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let scheme = ProcessOriented::new(2 * procs);
    let compiled = scheme.compile(&nest, &graph, &space);

    let mut t = Table::new(
        "E11 / Sec 6",
        &format!("sync-bus traffic and write coalescing (Fig 2.1 loop, N={n}, P={procs})"),
        &[
            "sync bus latency",
            "coalescing",
            "broadcasts",
            "saved",
            "data tx",
            "sync/data ratio",
            "makespan",
        ],
    );
    for bus_latency in [1u32, 24] {
        for coalesce in [false, true] {
            let config = MachineConfig {
                processors: procs,
                sync_bus_latency: bus_latency,
                coalesce_sync_writes: coalesce,
                ..MachineConfig::default()
            };
            let out = compiled.run(&config).expect("simulation failed");
            assert!(compiled.validate(&out).is_empty(), "order violated");
            t.row(vec![
                bus_latency.to_string(),
                if coalesce { "on".into() } else { "off".into() },
                out.stats.sync_broadcasts.to_string(),
                out.stats.coalesced_writes.to_string(),
                out.stats.data_transactions.to_string(),
                f(out.stats.sync_broadcasts as f64 / out.stats.data_transactions as f64),
                out.stats.makespan.to_string(),
            ]);
        }
    }
    t.note("Paper (Section 6): 'since a PC needs to be updated only after the source statement is completed, the amount of such traffic is no worse than that in the main data bus'; a later write to the same PC covers a queued one, 'thus avoid the extra bus traffic'.");
    t.note("A fast bus never queues writes, so coalescing is idle; a congested bus shows the optimization's full effect.");
    t
}

/// The dedicated-transport schemes, the only ones whose sync traffic
/// rides the fabric under ablation (reference/instance schemes sync
/// through shared memory and never touch the sync bus).
fn fabric_roster(procs: usize) -> Vec<Box<dyn Scheme>> {
    let mut v: Vec<Box<dyn Scheme>> =
        vec![Box::new(StatementOriented::new()), Box::new(ProcessOriented::new(2 * procs))];
    if procs.is_power_of_two() {
        v.push(Box::new(BarrierPhased::new(procs)));
    }
    v
}

/// E11b / Section 6 ablation — what the dedicated sync bus buys.
///
/// Every dedicated-transport scheme runs on three fabrics: the paper's
/// dedicated bus, a shared fabric where broadcasts arbitrate against
/// data traffic on the one physical bus (the §6 design the dedicated
/// bus avoids), and a zero-latency oracle bounding what any fabric
/// could achieve. Per scheme, makespan must order
/// ideal ≤ dedicated ≤ shared.
pub fn fabric_ablation(n: i64, procs: usize) -> Table {
    let nest = fig21_loop(n);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let mut t = Table::new(
        "E11b / Sec 6",
        &format!("sync-fabric ablation (Fig 2.1 loop, N={n}, P={procs})"),
        &[
            "scheme",
            "fabric",
            "makespan",
            "issued",
            "broadcasts",
            "coalesced",
            "sync occ",
            "data occ",
            "vs dedicated",
        ],
    );
    for scheme in fabric_roster(procs) {
        let compiled = scheme.compile(&nest, &graph, &space);
        let mut dedicated_makespan = 0u64;
        for kind in FabricKind::ALL {
            let config = MachineConfig {
                sync_transport: scheme.natural_transport(),
                ..MachineConfig::with_processors(procs)
            }
            .fabric(kind);
            let out = compiled.run(&config).expect("simulation failed");
            assert!(compiled.validate(&out).is_empty(), "order violated");
            // Conservation: on a fault-free run every issued sync op is
            // either granted as a broadcast or folded into a queued one.
            // Fewer broadcasts on a slower fabric is coalescing under
            // arbitration latency, not loss.
            assert_eq!(
                out.stats.sync_ops_issued,
                out.stats.sync_broadcasts + out.stats.coalesced_writes,
                "{} {kind}: sync ops leaked",
                scheme.name()
            );
            if kind == FabricKind::Dedicated {
                dedicated_makespan = out.stats.makespan;
            }
            t.row(vec![
                scheme.name(),
                kind.to_string(),
                out.stats.makespan.to_string(),
                out.stats.sync_ops_issued.to_string(),
                out.stats.sync_broadcasts.to_string(),
                out.stats.coalesced_writes.to_string(),
                f(out.metrics.sync_bus_occupancy(out.stats.makespan)),
                f(out.metrics.data_bus_occupancy(out.stats.makespan)),
                f(out.stats.makespan as f64 / dedicated_makespan as f64),
            ]);
        }
    }
    t.note("Paper (Section 6): a dedicated synchronization bus keeps PC/SC broadcasts off the main data bus; sharing one bus makes every broadcast steal a data-transfer slot.");
    t.note("The ideal fabric delivers broadcasts instantly and bounds the improvement any bus design could still buy.");
    t.note("issued = broadcasts + coalesced on every fabric: fabrics that queue writes long enough to cover them broadcast fewer times, not fewer writes.");
    t
}

/// E11c / Section 6 — caching synchronization variables.
///
/// The through-memory schemes (keys and full/empty bits living next to
/// their data) run cacheless, then under each coherence protocol with
/// sync variables cacheable and uncacheable. Cached sync lines turn
/// every poll into a (usually) local hit — at the price of invalidation
/// ping-pong (MESI) or an update per write (Dragon); uncached sync
/// lines pay full memory latency on every poll but keep coherence
/// traffic at zero for them.
pub fn cache_ablation(n: i64, procs: usize) -> Table {
    let nest = fig21_loop(n);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let schemes: Vec<Box<dyn Scheme>> =
        vec![Box::new(ReferenceBased::new()), Box::new(InstanceBased::new())];
    let mut t = Table::new(
        "E11c / Sec 6",
        &format!(
            "caching sync variables vs leaving them uncached (Fig 2.1 loop, N={n}, P={procs})"
        ),
        &[
            "scheme",
            "cache",
            "sync cached",
            "makespan",
            "hit rate",
            "invals",
            "updates",
            "writebacks",
            "vs no cache",
        ],
    );
    for scheme in schemes {
        let compiled = scheme.compile(&nest, &graph, &space);
        let mut cacheless_makespan = 0u64;
        let cells: [(String, &str, CacheModel); 5] = [
            ("none".into(), "-", CacheModel::None),
            ("mesi".into(), "yes", CacheModel::private(CoherenceProtocol::Mesi)),
            ("mesi".into(), "no", CacheModel::private(CoherenceProtocol::Mesi).sync_uncached()),
            ("dragon".into(), "yes", CacheModel::private(CoherenceProtocol::Dragon)),
            ("dragon".into(), "no", CacheModel::private(CoherenceProtocol::Dragon).sync_uncached()),
        ];
        for (label, sync_cached, cache) in cells {
            let config = MachineConfig {
                sync_transport: scheme.natural_transport(),
                cache,
                ..MachineConfig::with_processors(procs)
            };
            let out = compiled.run(&config).expect("simulation failed");
            assert!(compiled.validate(&out).is_empty(), "order violated");
            if !cache.enabled() {
                cacheless_makespan = out.stats.makespan;
            }
            let c = out.metrics.cache;
            t.row(vec![
                scheme.name(),
                label,
                sync_cached.into(),
                out.stats.makespan.to_string(),
                f(c.hit_rate()),
                c.invalidations.to_string(),
                c.updates.to_string(),
                c.writebacks.to_string(),
                f(out.stats.makespan as f64 / cacheless_makespan as f64),
            ]);
        }
    }
    t.note("Paper (Section 6): whether synchronization variables should be cacheable is a design axis — spinning on a cached line costs no bus traffic until the value changes, but the change then pays coherence traffic on the hot line.");
    t.note("MESI invalidates the spinners (they miss and refetch); Dragon updates them in place (they keep hitting).");
    t
}

/// Cache-geometry and protocol sweep: one through-memory scheme across
/// set count, associativity and line size under both protocols.
pub fn cache_sweep(n: i64, procs: usize) -> Table {
    let nest = fig21_loop(n);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let scheme = ReferenceBased::new();
    let compiled = scheme.compile(&nest, &graph, &space);
    let mut t = Table::new(
        "E11d / Sec 6",
        &format!("cache geometry sweep, reference-based scheme (Fig 2.1 loop, N={n}, P={procs})"),
        &["protocol", "sets", "assoc", "line", "makespan", "hit rate", "coh tx", "writebacks"],
    );
    for protocol in CoherenceProtocol::ALL {
        for (sets, assoc, line_words) in
            [(4u32, 1u32, 4u32), (16, 2, 4), (64, 2, 4), (64, 4, 4), (64, 2, 1), (64, 2, 8)]
        {
            let config = MachineConfig {
                sync_transport: scheme.natural_transport(),
                cache: CacheModel::private(protocol).geometry(sets, assoc, line_words),
                ..MachineConfig::with_processors(procs)
            };
            let out = compiled.run(&config).expect("simulation failed");
            assert!(compiled.validate(&out).is_empty(), "order violated");
            let c = out.metrics.cache;
            t.row(vec![
                protocol.to_string(),
                sets.to_string(),
                assoc.to_string(),
                line_words.to_string(),
                out.stats.makespan.to_string(),
                f(c.hit_rate()),
                c.coherence_traffic().to_string(),
                c.writebacks.to_string(),
            ]);
        }
    }
    t.note("Tiny caches thrash (capacity misses and writebacks); longer lines prefetch neighbours but widen false sharing on the hot sync lines.");
    t
}

/// The fabric ablation plus the cache ablation and geometry sweep as one
/// JSON document (the `BENCH_fabric.json` artifact): raw counters per
/// cell, so CI diffs can catch regressions numerically.
pub fn fabric_json(n: i64, procs: usize) -> String {
    let t = fabric_ablation(n, procs);
    let mut rows = String::new();
    for (i, r) in t.rows.iter().enumerate() {
        let sep = if i + 1 < t.rows.len() { "," } else { "" };
        rows.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"fabric\": \"{}\", \"makespan\": {}, \
             \"sync_ops_issued\": {}, \"broadcasts\": {}, \"coalesced\": {}, \
             \"sync_occupancy\": {}, \"data_occupancy\": {}, \"vs_dedicated\": {}}}{sep}\n",
            r[0], r[1], r[2], r[3], r[4], r[5], r[6], r[7], r[8]
        ));
    }
    let ca = cache_ablation(n, procs);
    let mut cache_rows = String::new();
    for (i, r) in ca.rows.iter().enumerate() {
        let sep = if i + 1 < ca.rows.len() { "," } else { "" };
        cache_rows.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"cache\": \"{}\", \"sync_cached\": \"{}\", \
             \"makespan\": {}, \"hit_rate\": {}, \"invalidations\": {}, \"updates\": {}, \
             \"writebacks\": {}, \"vs_no_cache\": {}}}{sep}\n",
            r[0], r[1], r[2], r[3], r[4], r[5], r[6], r[7], r[8]
        ));
    }
    let cs = cache_sweep(n, procs);
    let mut sweep_rows = String::new();
    for (i, r) in cs.rows.iter().enumerate() {
        let sep = if i + 1 < cs.rows.len() { "," } else { "" };
        sweep_rows.push_str(&format!(
            "    {{\"protocol\": \"{}\", \"sets\": {}, \"assoc\": {}, \"line_words\": {}, \
             \"makespan\": {}, \"hit_rate\": {}, \"coherence_tx\": {}, \"writebacks\": {}}}{sep}\n",
            r[0], r[1], r[2], r[3], r[4], r[5], r[6], r[7]
        ));
    }
    format!(
        "{{\n  \"experiment\": \"sec6 sync-fabric ablation\",\n  \"loop\": \"fig21\",\n  \
         \"n\": {n},\n  \"procs\": {procs},\n  \
         \"fabrics\": [\"dedicated\", \"shared\", \"ideal\"],\n  \"rows\": [\n{rows}  ],\n  \
         \"cache_ablation\": [\n{cache_rows}  ],\n  \
         \"cache_sweep\": [\n{sweep_rows}  ]\n}}\n"
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn sync_traffic_at_most_data_traffic_and_coalescing_saves() {
        let t = super::run_experiment(48, 4);
        for r in &t.rows {
            let ratio: f64 = r[5].parse().unwrap();
            assert!(ratio <= 1.0, "sync/data ratio {ratio} exceeds 1");
        }
        // On the congested bus, coalescing absorbs queued writes and
        // recovers most of the lost makespan.
        let slow_on = t.rows.iter().find(|r| r[0] == "24" && r[1] == "on").unwrap();
        let saved: u64 = slow_on[3].parse().unwrap();
        assert!(saved > 0, "congested bus with coalescing should save broadcasts");
        let slow_off = t.rows.iter().find(|r| r[0] == "24" && r[1] == "off").unwrap();
        let b_on: u64 = slow_on[2].parse().unwrap();
        let b_off: u64 = slow_off[2].parse().unwrap();
        assert!(b_on < b_off, "coalescing must reduce broadcasts ({b_on} vs {b_off})");
        let m_on: u64 = slow_on[6].parse().unwrap();
        let m_off: u64 = slow_off[6].parse().unwrap();
        assert!(m_on < m_off, "coalescing must improve makespan ({m_on} vs {m_off})");
    }

    #[test]
    fn fabric_ablation_orders_ideal_dedicated_shared() {
        let t = super::fabric_ablation(32, 4);
        // 3 dedicated-transport schemes x 3 fabrics.
        assert_eq!(t.rows.len(), 9);
        for chunk in t.rows.chunks(3) {
            let makespan = |fabric: &str| -> u64 {
                chunk.iter().find(|r| r[1] == fabric).unwrap()[2].parse().unwrap()
            };
            let (ded, shr, idl) = (makespan("dedicated"), makespan("shared"), makespan("ideal"));
            let scheme = &chunk[0][0];
            assert!(idl <= ded, "{scheme}: ideal {idl} beat by dedicated {ded}");
            assert!(ded <= shr, "{scheme}: dedicated {ded} beat by shared {shr}");
            // The oracle never touches a bus; the shared fabric must pay
            // for its broadcasts in data-bus time.
            let ideal_row = chunk.iter().find(|r| r[1] == "ideal").unwrap();
            assert_eq!(ideal_row[6], "0.00", "{scheme}: ideal fabric held the sync bus");
            // Conservation: the issued count is fabric-invariant even
            // when the broadcast counts differ (coalescing).
            let issued: Vec<&String> = chunk.iter().map(|r| &r[3]).collect();
            assert!(
                issued.windows(2).all(|w| w[0] == w[1]),
                "{scheme}: issued ops differ across fabrics: {issued:?}"
            );
        }
        // At least one scheme must actually show the §6 gap, or the
        // ablation says nothing.
        let gap = t.rows.chunks(3).any(|c| {
            c.iter().find(|r| r[1] == "shared").unwrap()[2]
                != c.iter().find(|r| r[1] == "dedicated").unwrap()[2]
        });
        assert!(gap, "no scheme separated shared from dedicated");
    }

    #[test]
    fn fabric_json_is_complete() {
        let json = super::fabric_json(16, 4);
        for key in [
            "\"experiment\"",
            "\"rows\"",
            "\"dedicated\"",
            "\"shared\"",
            "\"ideal\"",
            "\"vs_dedicated\"",
            "\"sync_ops_issued\"",
            "\"coalesced\"",
            "\"cache_ablation\"",
            "\"sync_cached\"",
            "\"cache_sweep\"",
            "\"coherence_tx\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // 3 schemes x 3 fabrics, plus 2 schemes x 5 cache cells.
        assert_eq!(json.matches("{\"scheme\"").count(), 9 + 10);
        // 2 protocols x 6 geometries.
        assert_eq!(json.matches("{\"protocol\"").count(), 12);
    }

    #[test]
    fn cache_ablation_shows_the_protocol_tradeoff() {
        let t = super::cache_ablation(32, 4);
        // 2 through-memory schemes x 5 cells.
        assert_eq!(t.rows.len(), 10);
        for chunk in t.rows.chunks(5) {
            let scheme = &chunk[0][0];
            let cell = |cache: &str, sync_cached: &str| -> &Vec<String> {
                chunk.iter().find(|r| r[1] == cache && r[2] == sync_cached).unwrap()
            };
            // Cached sync lines ping-pong under MESI (invalidations) and
            // flood updates under Dragon — and only when actually cached.
            let mesi: u64 = cell("mesi", "yes")[5].parse().unwrap();
            assert!(mesi > 0, "{scheme}: cached sync under MESI produced no invalidations");
            let dragon: u64 = cell("dragon", "yes")[6].parse().unwrap();
            assert!(dragon > 0, "{scheme}: cached sync under Dragon produced no updates");
            // The cacheless baseline reports no cache traffic at all.
            let none = cell("none", "-");
            assert_eq!(none[5], "0", "{scheme}: phantom invalidations without caches");
            assert_eq!(none[7], "0", "{scheme}: phantom writebacks without caches");
        }
    }

    #[test]
    fn cache_sweep_shows_tiny_caches_thrashing() {
        let t = super::cache_sweep(32, 4);
        assert_eq!(t.rows.len(), 12);
        for protocol in ["mesi", "dragon"] {
            let row = |sets: &str, assoc: &str, line: &str| -> &Vec<String> {
                t.rows
                    .iter()
                    .find(|r| r[0] == protocol && r[1] == sets && r[2] == assoc && r[3] == line)
                    .unwrap()
            };
            let (tiny, big) = (row("4", "1", "4"), row("64", "2", "4"));
            let wb = |r: &Vec<String>| -> u64 { r[7].parse().unwrap() };
            let makespan = |r: &Vec<String>| -> u64 { r[4].parse().unwrap() };
            assert!(
                wb(tiny) > wb(big),
                "{protocol}: the thrashing cache should evict more dirty lines \
                 ({} vs {})",
                wb(tiny),
                wb(big)
            );
            assert!(
                makespan(tiny) > makespan(big),
                "{protocol}: capacity misses should cost makespan ({} vs {})",
                makespan(tiny),
                makespan(big)
            );
        }
    }
}

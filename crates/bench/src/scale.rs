//! P-scaling curve behind `datasync perf --scale`: how the fast-forward
//! kernel's throughput holds up as the simulated machine grows.
//!
//! Every scheme is run on its natural transport at P = 8 → 1024
//! processors (powers of two) on a spin-heavy Doacross sized to the
//! machine (2·P iterations, inflated statement costs). The struct-of-
//! arrays machine state and the calendar event queue are exactly the
//! mechanisms this curve exercises: per-advance work is bounded by
//! *events*, not processors, so simulated cycles/second should stay
//! flat-ish while the machine grows 128-fold.
//!
//! The report serializes to `BENCH_scale.json` (hand-rolled JSON — the
//! workspace is dependency-free).

use crate::perf::time_runs;
use datasync_loopir::analysis::analyze;
use datasync_loopir::space::IterSpace;
use datasync_loopir::workpatterns::fig21_loop;
use datasync_schemes::scheme::Scheme;
use datasync_schemes::{
    BarrierPhased, InstanceBased, ProcessOriented, ReferenceBased, StatementOriented,
};
use datasync_sim::MachineConfig;

/// One (scheme, P) measurement on the scaling curve.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Processors simulated.
    pub procs: usize,
    /// Makespan of the run (simulated cycles).
    pub makespan: u64,
    /// Wall-clock seconds per run (median of three).
    pub wall_seconds: f64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
}

/// The scaling curve of one scheme across the P axis.
#[derive(Debug, Clone)]
pub struct SchemeCurve {
    /// Scheme family label (stable across P).
    pub scheme: String,
    /// One point per processor count, in ascending P order.
    pub points: Vec<ScalePoint>,
}

/// Results of one `perf --scale` run.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// What was simulated.
    pub workload: String,
    /// The P axis, ascending.
    pub procs: Vec<usize>,
    /// One curve per scheme.
    pub curves: Vec<SchemeCurve>,
}

impl ScaleReport {
    /// Hand-rolled JSON rendering for `BENCH_scale.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"workload\": \"{}\",\n", self.workload));
        let axis: Vec<String> = self.procs.iter().map(ToString::to_string).collect();
        out.push_str(&format!("  \"procs\": [{}],\n", axis.join(", ")));
        out.push_str("  \"schemes\": [\n");
        for (i, curve) in self.curves.iter().enumerate() {
            out.push_str(&format!("    {{\"scheme\": \"{}\", \"points\": [\n", curve.scheme));
            for (j, pt) in curve.points.iter().enumerate() {
                out.push_str(&format!(
                    "      {{\"procs\": {}, \"makespan\": {}, \"wall_seconds\": {:.6}, \
                     \"cycles_per_sec\": {:.0}}}{}\n",
                    pt.procs,
                    pt.makespan,
                    pt.wall_seconds,
                    pt.cycles_per_sec,
                    if j + 1 < curve.points.len() { "," } else { "" }
                ));
            }
            out.push_str(&format!("    ]}}{}\n", if i + 1 < self.curves.len() { "," } else { "" }));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Human-readable curve table: one row per scheme, one column per P.
    pub fn summary(&self) -> String {
        let mut out = format!("perf --scale: {}\n", self.workload);
        out.push_str("cycles/sec by processor count (fast-forward kernel)\n");
        out.push_str(&format!("{:<16}", "scheme"));
        for p in &self.procs {
            out.push_str(&format!(" {:>10}", format!("P={p}")));
        }
        out.push('\n');
        for curve in &self.curves {
            out.push_str(&format!("{:<16}", curve.scheme));
            for pt in &curve.points {
                out.push_str(&format!(" {:>10}", human_rate(pt.cycles_per_sec)));
            }
            out.push('\n');
        }
        out
    }
}

/// `3.1G`-style rendering of a cycles/sec rate.
fn human_rate(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.1}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else {
        format!("{:.0}", v)
    }
}

/// Builds the scheme under test for one processor count.
fn build_scheme(label: &str, procs: usize) -> Box<dyn Scheme> {
    match label {
        "process" => Box::new(ProcessOriented::new(2 * procs)),
        "statement" => Box::new(StatementOriented::new()),
        "barrier-phased" => Box::new(BarrierPhased::new(procs)),
        "reference" => Box::new(ReferenceBased::new()),
        "instance" => Box::new(InstanceBased::new()),
        other => unreachable!("unknown scale scheme {other}"),
    }
}

/// Scheme families on the curve (each on its natural transport).
pub const SCHEMES: [&str; 5] = ["process", "statement", "barrier-phased", "reference", "instance"];

/// Runs the scaling sweep. `quick` caps the P axis and shrinks costs for
/// smoke runs; the full axis is P = 8 → 1024.
///
/// # Panics
///
/// Panics if a fault-free scaling run fails to complete (they are
/// deterministic and deadlock-free by construction).
pub fn run(quick: bool) -> ScaleReport {
    let procs: Vec<usize> =
        if quick { vec![8, 16, 32] } else { vec![8, 16, 32, 64, 128, 256, 512, 1024] };
    let cost: u32 = if quick { 500 } else { 2_000 };
    let inflate = move |_id, _pid| cost;
    let mut curves: Vec<SchemeCurve> = SCHEMES
        .iter()
        .map(|s| SchemeCurve { scheme: (*s).to_string(), points: Vec::new() })
        .collect();
    for &p in &procs {
        // Size the loop to the machine so every processor has work.
        let iters = 2 * p as i64;
        let nest = fig21_loop(iters);
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        for curve in &mut curves {
            let scheme = build_scheme(&curve.scheme, p);
            let compiled = scheme.compile_with(&nest, &graph, &space, Some(&inflate));
            let config = MachineConfig {
                sync_transport: scheme.natural_transport(),
                ..MachineConfig::with_processors(p)
            };
            let out = compiled.run(&config).expect("scale workload must complete");
            let makespan = out.stats.makespan;
            let wall_seconds = time_runs(|| {
                let _ = compiled.run(&config).expect("scale workload must complete");
            });
            curve.points.push(ScalePoint {
                procs: p,
                makespan,
                wall_seconds,
                cycles_per_sec: makespan as f64 / wall_seconds,
            });
        }
    }
    ScaleReport {
        workload: format!(
            "fig 2.1 Doacross, 2P iterations, {cost}cy statements, \
             every scheme on its natural transport"
        ),
        procs,
        curves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_curve_covers_every_scheme_and_serializes() {
        let r = run(true);
        assert_eq!(r.procs, vec![8, 16, 32]);
        assert_eq!(r.curves.len(), SCHEMES.len());
        for curve in &r.curves {
            assert_eq!(curve.points.len(), r.procs.len(), "{}", curve.scheme);
            for (pt, p) in curve.points.iter().zip(&r.procs) {
                assert_eq!(pt.procs, *p);
                assert!(pt.makespan > 0, "{}", curve.scheme);
                assert!(pt.cycles_per_sec > 0.0, "{}", curve.scheme);
            }
        }
        let json = r.to_json();
        for key in ["\"workload\"", "\"procs\"", "\"schemes\"", "\"cycles_per_sec\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"scheme\": \"barrier-phased\""), "{json}");
        let s = r.summary();
        assert!(s.contains("P=32"), "{s}");
        assert!(s.contains("instance"), "{s}");
    }

    #[test]
    fn bigger_machines_simulate_more_cycles_of_work() {
        // The workload grows with P, so makespans must not collapse:
        // each scheme's P=32 run covers at least as many iterations'
        // worth of cycles as its P=8 run issued per processor.
        let r = run(true);
        for curve in &r.curves {
            let first = curve.points.first().expect("points");
            let last = curve.points.last().expect("points");
            assert!(
                last.makespan >= first.makespan / 4,
                "{}: makespan collapsed from {} to {}",
                curve.scheme,
                first.makespan,
                last.makespan
            );
        }
    }
}

//! P-scaling curve behind `datasync perf --scale`: how the fast-forward
//! kernel's throughput holds up as the simulated machine grows.
//!
//! Every scheme is run on its natural transport at P = 8 → 1024
//! processors (powers of two) on a spin-heavy Doacross sized to the
//! machine (2·P iterations, inflated statement costs). The struct-of-
//! arrays machine state and the calendar event queue are exactly the
//! mechanisms this curve exercises: per-advance work is bounded by
//! *events*, not processors, so simulated cycles/second should stay
//! flat-ish while the machine grows 128-fold.
//!
//! Alongside the per-scheme kernel-throughput curves, the sweep carries
//! a **fabric ablation**: a barrier hot-spot microbenchmark (every
//! processor RMWs one counter each round, then waits for the round
//! total — pure sync-transport traffic, no data accesses) run on the
//! flat dedicated bus and on the clustered two-level fabric with
//! `max(2, P/32)` clusters, out to P = 4096. The flat bus serializes
//! all P updates per round, so its makespan grows linearly in P; the
//! clustered fabric grants cluster buses in parallel and aggregates
//! same-variable submissions at the bridge, holding the round cost
//! near-constant — the P-scaling story the two-level topology exists
//! to tell.
//!
//! The report serializes to `BENCH_scale.json` (hand-rolled JSON — the
//! workspace is dependency-free).

use crate::perf::time_runs;
use datasync_loopir::analysis::analyze;
use datasync_loopir::space::IterSpace;
use datasync_loopir::workpatterns::fig21_loop;
use datasync_schemes::scheme::Scheme;
use datasync_schemes::{
    BarrierPhased, InstanceBased, ProcessOriented, ReferenceBased, StatementOriented,
};
use datasync_sim::{FabricKind, Instr, Machine, MachineConfig, Pred, Program, StepMode, Workload};

/// One (scheme, P) measurement on the scaling curve.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Processors simulated.
    pub procs: usize,
    /// Cluster count of the two-level geometry (0 = flat fabric).
    pub clusters: u32,
    /// Makespan of the run (simulated cycles).
    pub makespan: u64,
    /// Wall-clock seconds per run (median of three).
    pub wall_seconds: f64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
}

/// The scaling curve of one scheme across the P axis.
#[derive(Debug, Clone)]
pub struct SchemeCurve {
    /// Scheme family label (stable across P).
    pub scheme: String,
    /// Sync-fabric backend the curve ran on (`dedicated` for the
    /// natural-transport scheme curves, `clustered` for the two-level
    /// side of the fabric ablation).
    pub fabric: String,
    /// One point per processor count, in ascending P order.
    pub points: Vec<ScalePoint>,
}

/// Results of one `perf --scale` run.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// What was simulated.
    pub workload: String,
    /// The P axis, ascending.
    pub procs: Vec<usize>,
    /// One curve per scheme.
    pub curves: Vec<SchemeCurve>,
}

impl ScaleReport {
    /// Hand-rolled JSON rendering for `BENCH_scale.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"workload\": \"{}\",\n", self.workload));
        let axis: Vec<String> = self.procs.iter().map(ToString::to_string).collect();
        out.push_str(&format!("  \"procs\": [{}],\n", axis.join(", ")));
        out.push_str("  \"schemes\": [\n");
        for (i, curve) in self.curves.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"scheme\": \"{}\", \"fabric\": \"{}\", \"points\": [\n",
                curve.scheme, curve.fabric
            ));
            for (j, pt) in curve.points.iter().enumerate() {
                out.push_str(&format!(
                    "      {{\"procs\": {}, \"clusters\": {}, \"makespan\": {}, \
                     \"wall_seconds\": {:.6}, \"cycles_per_sec\": {:.0}}}{}\n",
                    pt.procs,
                    pt.clusters,
                    pt.makespan,
                    pt.wall_seconds,
                    pt.cycles_per_sec,
                    if j + 1 < curve.points.len() { "," } else { "" }
                ));
            }
            out.push_str(&format!("    ]}}{}\n", if i + 1 < self.curves.len() { "," } else { "" }));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Human-readable curve table: one row per scheme, one column per P.
    pub fn summary(&self) -> String {
        let mut out = format!("perf --scale: {}\n", self.workload);
        out.push_str("cycles/sec by processor count (fast-forward kernel)\n");
        out.push_str(&format!("{:<16}", "scheme"));
        for p in &self.procs {
            out.push_str(&format!(" {:>10}", format!("P={p}")));
        }
        out.push('\n');
        for curve in self.curves.iter().filter(|c| c.scheme != HOTSPOT_SCHEME) {
            out.push_str(&format!("{:<16}", curve.scheme));
            for pt in &curve.points {
                out.push_str(&format!(" {:>10}", human_rate(pt.cycles_per_sec)));
            }
            out.push('\n');
        }
        // The ablation's punchline: simulated makespan by P, flat vs
        // clustered, on the same hot-spot workload (its own P axis, so
        // it gets its own table).
        let ablation: Vec<&SchemeCurve> =
            self.curves.iter().filter(|c| c.scheme == HOTSPOT_SCHEME).collect();
        if let Some(first) = ablation.first() {
            out.push_str("\nbarrier hot-spot makespan (simulated cycles) by fabric\n");
            out.push_str(&format!("{:<16}", "fabric"));
            for pt in &first.points {
                out.push_str(&format!(" {:>12}", format!("P={}", pt.procs)));
            }
            out.push('\n');
            for curve in ablation {
                out.push_str(&format!("{:<16}", curve.fabric));
                for pt in &curve.points {
                    let geom = if pt.clusters > 0 {
                        format!("{} (c{})", pt.makespan, pt.clusters)
                    } else {
                        pt.makespan.to_string()
                    };
                    out.push_str(&format!(" {geom:>12}"));
                }
                out.push('\n');
            }
        }
        out
    }
}

/// `3.1G`-style rendering of a cycles/sec rate.
fn human_rate(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.1}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else {
        format!("{:.0}", v)
    }
}

/// Builds the scheme under test for one processor count.
fn build_scheme(label: &str, procs: usize) -> Box<dyn Scheme> {
    match label {
        "process" => Box::new(ProcessOriented::new(2 * procs)),
        "statement" => Box::new(StatementOriented::new()),
        "barrier-phased" => Box::new(BarrierPhased::new(procs)),
        "reference" => Box::new(ReferenceBased::new()),
        "instance" => Box::new(InstanceBased::new()),
        other => unreachable!("unknown scale scheme {other}"),
    }
}

/// Scheme families on the curve (each on its natural transport).
pub const SCHEMES: [&str; 5] = ["process", "statement", "barrier-phased", "reference", "instance"];

/// Label of the fabric-ablation curves (one per fabric).
pub const HOTSPOT_SCHEME: &str = "barrier-hotspot";

/// Hot-spot rounds per processor in the fabric ablation.
const HOTSPOT_ROUNDS: u64 = 4;

/// Compute cycles between hot-spot rounds (enough that processors
/// arrive staggered, small enough that the sync transport dominates).
const HOTSPOT_COMPUTE: u32 = 200;

/// Cluster geometry used for the clustered side of the ablation.
fn hotspot_clusters(p: usize) -> u32 {
    (p / 32).max(2) as u32
}

/// The barrier hot-spot microbenchmark: each processor runs
/// `HOTSPOT_ROUNDS` rounds of compute → RMW one shared counter → wait
/// for the round total. All sync, no data accesses — the transport is
/// the whole story.
fn hotspot_workload(p: usize) -> Workload {
    let programs: Vec<Program> = (0..p)
        .map(|_| {
            // alloc-ok: setup
            let mut instrs = Vec::with_capacity(3 * HOTSPOT_ROUNDS as usize);
            for r in 1..=HOTSPOT_ROUNDS {
                instrs.push(Instr::Compute(HOTSPOT_COMPUTE));
                instrs.push(Instr::SyncRmw { var: 0 });
                instrs.push(Instr::SyncWait { var: 0, pred: Pred::Geq(r * p as u64) });
            }
            Program::from_instrs(instrs)
        })
        .collect();
    Workload::static_assigned(programs, (0..p).map(|i| vec![i]).collect())
}

/// Runs the hot-spot workload on one fabric, returning its makespan.
fn hotspot_makespan(p: usize, fabric: FabricKind) -> u64 {
    let config = MachineConfig { sync_fabric: fabric, ..MachineConfig::with_processors(p) };
    let w = hotspot_workload(p);
    let mut m = Machine::new(&config, &w);
    m.set_mode(StepMode::FastForward);
    m.run_to_completion().expect("hot-spot workload must complete").stats.makespan
}

/// Runs the scaling sweep. `quick` caps the P axis and shrinks costs for
/// smoke runs; the full axis is P = 8 → 1024 for the scheme curves and
/// P = 8 → 4096 for the fabric ablation.
///
/// # Panics
///
/// Panics if a fault-free scaling run fails to complete (they are
/// deterministic and deadlock-free by construction).
pub fn run(quick: bool) -> ScaleReport {
    let procs: Vec<usize> =
        if quick { vec![8, 16, 32] } else { vec![8, 16, 32, 64, 128, 256, 512, 1024] };
    let cost: u32 = if quick { 500 } else { 2_000 };
    let inflate = move |_id, _pid| cost;
    let mut curves: Vec<SchemeCurve> = SCHEMES
        .iter()
        .map(|s| SchemeCurve {
            scheme: (*s).to_string(),
            fabric: "dedicated".to_string(),
            points: Vec::new(),
        })
        .collect();
    for &p in &procs {
        // Size the loop to the machine so every processor has work.
        let iters = 2 * p as i64;
        let nest = fig21_loop(iters);
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        for curve in &mut curves {
            let scheme = build_scheme(&curve.scheme, p);
            let compiled = scheme.compile_with(&nest, &graph, &space, Some(&inflate));
            let config = MachineConfig {
                sync_transport: scheme.natural_transport(),
                ..MachineConfig::with_processors(p)
            };
            let out = compiled.run(&config).expect("scale workload must complete");
            let makespan = out.stats.makespan;
            let wall_seconds = time_runs(|| {
                let _ = compiled.run(&config).expect("scale workload must complete");
            });
            curve.points.push(ScalePoint {
                procs: p,
                clusters: 0,
                makespan,
                wall_seconds,
                cycles_per_sec: makespan as f64 / wall_seconds,
            });
        }
    }
    // Fabric ablation: the same hot-spot workload on the flat dedicated
    // bus and on the clustered two-level fabric, out past the scheme
    // curves' axis — the flat bus's linear-in-P round cost against the
    // clustered fabric's near-constant one.
    let ablation_procs: Vec<usize> =
        if quick { vec![8, 16, 32] } else { vec![8, 32, 128, 256, 512, 1024, 2048, 4096] };
    let mut flat_curve = SchemeCurve {
        scheme: HOTSPOT_SCHEME.to_string(),
        fabric: "dedicated".to_string(),
        points: Vec::new(),
    };
    let mut clustered_curve = SchemeCurve {
        scheme: HOTSPOT_SCHEME.to_string(),
        fabric: "clustered".to_string(),
        points: Vec::new(),
    };
    for &p in &ablation_procs {
        for (curve, fabric, clusters) in [
            (&mut flat_curve, FabricKind::Dedicated, 0u32),
            (
                &mut clustered_curve,
                FabricKind::Clustered {
                    clusters: hotspot_clusters(p),
                    bridge_latency: 2,
                    coalesce_window: 4,
                },
                hotspot_clusters(p),
            ),
        ] {
            let makespan = hotspot_makespan(p, fabric);
            let wall_seconds = time_runs(|| {
                let _ = hotspot_makespan(p, fabric);
            });
            curve.points.push(ScalePoint {
                procs: p,
                clusters,
                makespan,
                wall_seconds,
                cycles_per_sec: makespan as f64 / wall_seconds,
            });
        }
    }
    curves.push(flat_curve);
    curves.push(clustered_curve);
    ScaleReport {
        workload: format!(
            "fig 2.1 Doacross, 2P iterations, {cost}cy statements, \
             every scheme on its natural transport; plus a barrier \
             hot-spot fabric ablation ({HOTSPOT_ROUNDS} rounds, \
             {HOTSPOT_COMPUTE}cy compute) on dedicated vs clustered \
             (P/32 clusters, bridge latency 2, coalesce window 4)"
        ),
        procs,
        curves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_curve_covers_every_scheme_and_serializes() {
        let r = run(true);
        assert_eq!(r.procs, vec![8, 16, 32]);
        // The 5 scheme curves plus the two fabric-ablation curves.
        assert_eq!(r.curves.len(), SCHEMES.len() + 2);
        for curve in &r.curves {
            assert_eq!(curve.points.len(), r.procs.len(), "{}", curve.scheme);
            for (pt, p) in curve.points.iter().zip(&r.procs) {
                assert_eq!(pt.procs, *p);
                assert!(pt.makespan > 0, "{}", curve.scheme);
                assert!(pt.cycles_per_sec > 0.0, "{}", curve.scheme);
                if curve.fabric == "clustered" {
                    assert!(pt.clusters >= 2, "{}: missing cluster geometry", curve.scheme);
                } else {
                    assert_eq!(pt.clusters, 0, "{}: flat points must record 0", curve.scheme);
                }
            }
        }
        let json = r.to_json();
        for key in
            ["\"workload\"", "\"procs\"", "\"schemes\"", "\"cycles_per_sec\"", "\"clusters\""]
        {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"scheme\": \"barrier-phased\""), "{json}");
        assert!(json.contains("\"fabric\": \"clustered\""), "{json}");
        assert!(json.contains("\"fabric\": \"dedicated\""), "{json}");
        let s = r.summary();
        assert!(s.contains("P=32"), "{s}");
        assert!(s.contains("instance"), "{s}");
        assert!(s.contains("barrier hot-spot makespan"), "{s}");
    }

    #[test]
    fn hotspot_ablation_clustered_beats_flat_at_scale() {
        // The acceptance bar for the two-level fabric: at P = 1024 the
        // clustered makespan must be at least 2x better than the flat
        // dedicated bus on the same workload (it is ~5x in practice —
        // the flat bus serializes all 1024 RMWs per round, the clusters
        // run 32-wide grants in parallel and the bridge aggregates).
        let flat = hotspot_makespan(1024, FabricKind::Dedicated);
        let clustered = hotspot_makespan(
            1024,
            FabricKind::Clustered {
                clusters: hotspot_clusters(1024),
                bridge_latency: 2,
                coalesce_window: 4,
            },
        );
        assert!(
            flat >= 2 * clustered,
            "clustered must be >=2x better at P=1024: flat {flat} vs clustered {clustered}"
        );
    }

    #[test]
    fn bigger_machines_simulate_more_cycles_of_work() {
        // The workload grows with P, so makespans must not collapse:
        // each scheme's P=32 run covers at least as many iterations'
        // worth of cycles as its P=8 run issued per processor.
        let r = run(true);
        for curve in &r.curves {
            let first = curve.points.first().expect("points");
            let last = curve.points.last().expect("points");
            assert!(
                last.makespan >= first.makespan / 4,
                "{}: makespan collapsed from {} to {}",
                curve.scheme,
                first.makespan,
                last.makespan
            );
        }
    }
}

//! A tiny timing harness so `cargo bench` needs no external crates.
//!
//! The `[[bench]]` targets in this crate are plain `fn main()` programs
//! (`harness = false`): each calls [`bench`] (or [`bench_with_setup`])
//! per case, which warms up, takes a fixed number of wall-clock samples,
//! and prints the median with min/max spread. The point of these targets
//! is shape (who wins, how things scale), not statistics, so a median
//! over a handful of samples is enough; the experiment *tables* carry
//! the reproducible numbers (simulated cycles, which are exact).

use std::time::{Duration, Instant};

/// Default samples per benchmark case.
pub const SAMPLES: usize = 10;

/// Times `f` (after two warm-up calls) and prints one result line.
///
/// Returns the median duration so callers can assert shapes.
pub fn bench<F: FnMut()>(name: &str, mut f: F) -> Duration {
    bench_with_setup(name, || (), |()| f())
}

/// Like [`bench`], but rebuilds the input with `setup` outside the timed
/// region of every sample (the criterion `iter_batched` pattern).
pub fn bench_with_setup<T, S, F>(name: &str, mut setup: S, mut f: F) -> Duration
where
    S: FnMut() -> T,
    F: FnMut(T),
{
    for _ in 0..2 {
        f(setup());
    }
    let mut samples: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let input = setup();
            let start = Instant::now();
            f(input);
            start.elapsed()
        })
        .collect();
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    println!(
        "{name:<44} median {:>12} (min {}, max {})",
        fmt(median),
        fmt(samples[0]),
        fmt(samples[samples.len() - 1]),
    );
    median
}

/// Formats a duration with an adaptive unit.
fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} us", ns as f64 / 1_000.0)
    } else {
        format!("{:.1} ms", ns as f64 / 1_000_000.0)
    }
}

/// Prints a group header, mirroring criterion's group labels.
pub fn group(title: &str) {
    println!("\n== {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_positive_and_setup_untimed() {
        let d = bench_with_setup(
            "harness-self-test",
            || std::hint::black_box(vec![0u8; 16]),
            |v| {
                std::hint::black_box(v.len());
            },
        );
        assert!(d <= Duration::from_secs(1));
    }
}

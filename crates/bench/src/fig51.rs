//! E6 / Fig 5.1 — wavefront-with-barrier vs asynchronous pipelining for
//! the four-point relaxation, with the group-size (`G`) trade-off.

use crate::table::{f, Table};
use datasync_sim::{run, Machine};
use datasync_workloads::pipeline_sim::{
    pipelined_presets, pipelined_sc_workload, pipelined_workload, relaxation_arcs,
    relaxation_config, wavefront_workload, CellCost,
};

/// Runs the comparison for one grid size.
pub fn run_experiment(n: usize, procs: usize, cell_cost: u32, gs: &[usize]) -> Table {
    let config = relaxation_config(procs);
    let mut t = Table::new(
        "E6 / Fig 5.1",
        &format!("relaxation {n}x{n}: wavefront+barrier vs asynchronous pipelining (P={procs}, cell={cell_cost}cy)"),
        &["method", "makespan", "util %", "broadcasts", "spin cycles", "violations"],
    );

    let wf = wavefront_workload(n, CellCost(cell_cost), procs);
    let out = run(&config, &wf).expect("wavefront sim failed");
    let v = out.trace.validate_order(&relaxation_arcs(n)).len();
    t.row(vec![
        "wavefront + butterfly barrier".into(),
        out.stats.makespan.to_string(),
        f(out.stats.utilization() * 100.0),
        out.stats.sync_broadcasts.to_string(),
        out.stats.total_spin().to_string(),
        v.to_string(),
    ]);

    for &g in gs {
        let x = 2 * procs;
        let w = pipelined_workload(n, CellCost(cell_cost), g, x);
        let mut m = Machine::new(&config, &w);
        for (var, val) in pipelined_presets(n, x) {
            m.preset_sync(var, val);
        }
        let out = m.run_to_completion().expect("pipelined sim failed");
        let v = out.trace.validate_order(&relaxation_arcs(n)).len();
        t.row(vec![
            format!("pipelined Doacross, G={g}"),
            out.stats.makespan.to_string(),
            f(out.stats.utilization() * 100.0),
            out.stats.sync_broadcasts.to_string(),
            out.stats.total_spin().to_string(),
            v.to_string(),
        ]);
    }
    // The same pipelined structure realized with the statement-oriented
    // scheme: the paper counts N-1 synchronization points between
    // consecutive rows, so N-1 SCs are needed for full pipelining; a
    // limited SC pool strangles it.
    let m = n - 1;
    for l in [1usize, m.min(4), m] {
        let w = pipelined_sc_workload(n, CellCost(cell_cost), l);
        let out = run(&config, &w).expect("SC pipeline sim failed");
        let v = out.trace.validate_order(&relaxation_arcs(n)).len();
        t.row(vec![
            format!("statement-oriented pipeline, {l} SCs"),
            out.stats.makespan.to_string(),
            f(out.stats.utilization() * 100.0),
            out.stats.sync_broadcasts.to_string(),
            out.stats.total_spin().to_string(),
            v.to_string(),
        ]);
    }
    t.note("Paper: 'The two methods will have the same number of parallel steps; however, the efficiency and the processor utilization is much better in the asynchronous pipelined method.'");
    t.note("Grouping G iterations reduces synchronization significantly at the cost of extra pipeline delay (Fig 5.1.b).");
    t.note("Example 1's other claim: 'N-1 SC's are needed to get the maximum parallelism if we use the statement-oriented scheme... which makes it perform poorly when the number of SC's is limited' — the PC rows above achieve the pipeline with only 2P counters.");
    t
}

/// Speedup curves over a processor sweep: the classic scaling figure for
/// both methods, relative to the 1-processor pipelined run.
pub fn p_sweep(n: usize, cell_cost: u32, procs: &[usize]) -> Table {
    let mut t = Table::new(
        "E6b / Fig 5.1 scaling",
        &format!("relaxation {n}x{n}: speedup vs processors (G=1)"),
        &[
            "P",
            "wavefront makespan",
            "pipelined makespan",
            "wavefront speedup",
            "pipelined speedup",
        ],
    );
    let serial = {
        let x = 2;
        let w = pipelined_workload(n, CellCost(cell_cost), 1, x);
        let config = relaxation_config(1);
        let mut m = Machine::new(&config, &w);
        for (var, val) in pipelined_presets(n, x) {
            m.preset_sync(var, val);
        }
        m.run_to_completion().expect("serial sim failed").stats.makespan
    };
    for &p in procs {
        let wf = run(&relaxation_config(p), &wavefront_workload(n, CellCost(cell_cost), p))
            .expect("wavefront sim failed")
            .stats
            .makespan;
        let x = 2 * p;
        let w = pipelined_workload(n, CellCost(cell_cost), 1, x);
        let config = relaxation_config(p);
        let mut m = Machine::new(&config, &w);
        for (var, val) in pipelined_presets(n, x) {
            m.preset_sync(var, val);
        }
        let pl = m.run_to_completion().expect("pipelined sim failed").stats.makespan;
        t.row(vec![
            p.to_string(),
            wf.to_string(),
            pl.to_string(),
            f(serial as f64 / wf as f64),
            f(serial as f64 / pl as f64),
        ]);
    }
    t.note("Both curves flatten when the data path saturates; the pipelined method stays ahead because it never idles at a barrier waiting for the last processor.");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn p_sweep_speedups_scale() {
        let t = super::p_sweep(17, 24, &[1, 2, 4]);
        assert_eq!(t.rows.len(), 3);
        let pl_speedup: Vec<f64> = t.rows.iter().map(|r| r[4].parse().unwrap()).collect();
        assert!(pl_speedup[2] > pl_speedup[0], "speedup must grow with P: {pl_speedup:?}");
    }

    #[test]
    fn pipelined_wins_and_g_reduces_broadcasts() {
        let t = super::run_experiment(17, 4, 24, &[1, 4]);
        let get = |name_prefix: &str, col: usize| -> u64 {
            t.rows.iter().find(|r| r[0].starts_with(name_prefix)).unwrap()[col]
                .parse()
                .unwrap()
        };
        assert!(get("pipelined Doacross, G=1", 1) < get("wavefront", 1));
        assert!(get("pipelined Doacross, G=4", 3) < get("pipelined Doacross, G=1", 3));
        // Example 1's limited-SC claim: one statement counter strangles
        // the pipeline that 16 SCs (= N-1) or a handful of PCs achieve.
        assert!(
            get("statement-oriented pipeline, 1 SCs", 1)
                > 2 * get("statement-oriented pipeline, 16 SCs", 1),
            "1 SC must be far slower than N-1 SCs"
        );
        assert!(
            get("statement-oriented pipeline, 16 SCs", 1) >= get("pipelined Doacross, G=1", 1) / 2,
            "N-1 SCs roughly matches the PC pipeline"
        );
        for r in &t.rows {
            assert_eq!(r.last().unwrap(), "0");
        }
    }
}

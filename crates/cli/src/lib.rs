//! The `datasync` command-line tool: analyze loops, simulate them under
//! every synchronization scheme, compare schemes, stress them with fault
//! injection, and regenerate the paper's experiment tables.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod args;
mod commands;

use args::Parsed;
use datasync_sim::SimError;

/// Usage text printed on argument errors.
pub const USAGE: &str = "\
datasync — Su & Yew (ISCA 1989) data-synchronization toolkit

USAGE:
  datasync analyze    [--loop L] [--n N] [--m M] [--dot]
      Dependence analysis, covering, the Doacross transformation listing,
      and the profitability decision for a loop.
  datasync simulate   [--loop L] [--n N] [--m M] [--scheme S] [--procs P]
                      [--x X] [--banks B] [--timeline]
      Run the loop on the simulated multiprocessor under one scheme.
  datasync compare    [--loop L] [--n N] [--m M] [--procs P] [--x X]
      Run the loop under every scheme and print the comparison table.
  datasync robustness [--n N] [--procs P] [--seed S] [--max-cycles C]
                      [--recovery on|off|repair-only] [--json PATH]
      Sweep every scheme across every fault class and intensity; print
      the degradation matrix (ok / recovered / DEGRADED / DEADLOCK /
      TIMEOUT / VIOLATED). Recovery (the self-healing sync-bus ladder:
      gap NACKs, retransmission, watchdog repair, fallback degradation)
      defaults to on; --json also writes the matrix as JSON.
  datasync wavefront  [--loop L] [--n N] [--m M]
      Derive the wavefront (skewing) schedule of a depth-2 loop.
  datasync unroll     [--loop L] [--n N] [--factor U]
      Unroll a loop and show the re-synchronized Doacross listing.
  datasync reproduce  [--quick] [--markdown]
      Regenerate every experiment table of the paper reproduction.
  datasync perf       [--out PATH] [--quick]
      Self-benchmark: fast-forward kernel vs per-cycle reference stepping
      and parallel vs serial sweep throughput; writes BENCH_sim.json.
  datasync trace      [--loop L] [--n N] [--m M] [--scheme S] [--procs P]
                      [--x X] [--banks B] [--events E] [--out PATH]
      Run one scheme with the event ring enabled and export a Chrome
      trace_event JSON (open in chrome://tracing or ui.perfetto.dev).
  datasync metrics    [--loop L] [--n N] [--m M] [--scheme S] [--procs P]
                      [--x X] [--banks B]
      Run one scheme and print the derived metrics table: bus occupancy,
      bank conflicts, per-variable sync traffic, wait-time histograms.

LOOPS (--loop): fig21 (default) | relaxation | nested | branches,
  or --file <path> with the loop language (see datasync_loopir::parse)
SCHEMES (--scheme): process (default) | process-basic | statement |
                    reference | instance | barrier-phased

EXIT CODES: 0 success | 2 bad arguments or config | 3 deadlock detected |
            4 simulation timed out | 5 completed but only via recovery |
            6 completed only on the degraded fallback scheme |
            7 dependence order violated
";

/// A successful CLI invocation: the text to print plus the process exit
/// code. Code `0` is a clean success; the robustness sweep reports
/// qualified successes (`5` recovered, `6` degraded) and detected
/// failures (`3`/`4`/`7`) through the same channel so scripts can branch
/// on the worst outcome in the matrix while still receiving the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliOutput {
    /// Text for stdout.
    pub text: String,
    /// Process exit code (`0` unless a subcommand reports a qualified
    /// outcome).
    pub code: i32,
}

/// A CLI failure: a user-facing message plus the process exit code.
///
/// Exit codes are part of the tool's contract (scripts branch on them):
/// `2` for argument/config errors, `3` for a detected deadlock or
/// livelock, `4` for a simulation that hit its cycle cap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable description (multi-line for deadlocks: one line per
    /// stuck processor).
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError { message, code: 2 }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError { message: message.to_string(), code: 2 }
    }
}

impl From<SimError> for CliError {
    fn from(e: SimError) -> Self {
        match e {
            SimError::Deadlock { cycle, spinning, detail } => {
                let mut message = format!("deadlock detected at cycle {cycle}; stuck processors:");
                for (p, d) in spinning.iter().zip(&detail) {
                    message.push_str(&format!("\n  P{p}: {d}"));
                }
                if detail.is_empty() {
                    for p in &spinning {
                        message.push_str(&format!("\n  P{p}"));
                    }
                }
                CliError { message, code: 3 }
            }
            SimError::Timeout { max_cycles } => {
                CliError { message: format!("simulation exceeded {max_cycles} cycles"), code: 4 }
            }
            SimError::BadConfig(msg) => {
                CliError { message: format!("invalid machine config: {msg}"), code: 2 }
            }
        }
    }
}

/// Runs the CLI; returns the text to print plus the exit code.
///
/// # Errors
///
/// Returns a [`CliError`] carrying the message and the exit code the
/// process should use.
pub fn run(argv: &[String]) -> Result<CliOutput, CliError> {
    let parsed = Parsed::parse(argv)?;
    let ok = |text: String| CliOutput { text, code: 0 };
    match parsed.command.as_str() {
        "analyze" => commands::analyze(&parsed).map(ok),
        "simulate" => commands::simulate(&parsed).map(ok),
        "compare" => commands::compare(&parsed).map(ok),
        "robustness" => commands::robustness(&parsed),
        "wavefront" => commands::wavefront(&parsed).map(ok),
        "unroll" => commands::unroll(&parsed).map(ok),
        "reproduce" => commands::reproduce(&parsed).map(ok),
        "perf" => commands::perf(&parsed).map(ok),
        "trace" => commands::trace(&parsed).map(ok),
        "metrics" => commands::metrics(&parsed).map(ok),
        "help" | "--help" => Ok(ok(USAGE.to_string())),
        other => Err(format!("unknown subcommand '{other}'").into()),
    }
}

#[cfg(test)]
mod tests {
    use super::{CliError, CliOutput};

    fn run_full(words: &[&str]) -> Result<CliOutput, CliError> {
        super::run(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    fn run(words: &[&str]) -> Result<String, CliError> {
        run_full(words).map(|o| o.text)
    }

    #[test]
    fn analyze_fig21() {
        let out = run(&["analyze", "--n", "50"]).unwrap();
        assert!(out.contains("DO I = 1, 50"));
        assert!(out.contains("S1 -> S2 (flow, d=2)"));
        assert!(out.contains("doacross"));
        assert!(out.contains("mark_PC(1);"));
        assert!(out.contains("delay"));
    }

    #[test]
    fn analyze_all_loops() {
        for l in ["fig21", "relaxation", "nested", "branches"] {
            let out = run(&["analyze", "--loop", l, "--n", "8", "--m", "5"]).unwrap();
            assert!(out.contains("dependences"), "{l}: {out}");
        }
    }

    #[test]
    fn simulate_every_scheme() {
        for s in
            ["process", "process-basic", "statement", "reference", "instance", "barrier-phased"]
        {
            let out =
                run(&["simulate", "--n", "16", "--scheme", s, "--procs", "4", "--x", "8"]).unwrap();
            assert!(out.contains("makespan"), "{s}: {out}");
            assert!(out.contains("violations: 0"), "{s}: {out}");
        }
    }

    #[test]
    fn simulate_with_banked_memory() {
        let out = run(&["simulate", "--n", "12", "--banks", "8"]).unwrap();
        assert!(out.contains("violations: 0"));
    }

    #[test]
    fn simulate_with_timeline() {
        let out = run(&["simulate", "--n", "12", "--timeline"]).unwrap();
        assert!(out.contains("P0"));
        assert!(out.contains("cycles/column"));
    }

    #[test]
    fn compare_prints_table() {
        let out = run(&["compare", "--n", "16", "--procs", "4"]).unwrap();
        assert!(out.contains("process-oriented"));
        assert!(out.contains("reference-based"));
        assert!(out.contains("barrier-phased"));
    }

    #[test]
    fn robustness_prints_matrix() {
        let out = run(&["robustness", "--n", "8", "--procs", "4", "--seed", "7"]).unwrap();
        assert!(out.contains("scheme"), "{out}");
        assert!(out.contains("chaos"), "{out}");
        assert!(out.contains("bcast-loss"), "{out}");
        assert!(out.contains("process-oriented"), "{out}");
        assert!(out.contains("classified"), "{out}");
        assert!(out.contains("recovery on"), "{out}");
    }

    #[test]
    fn robustness_is_deterministic() {
        let a = run_full(&["robustness", "--n", "8", "--seed", "42"]).unwrap();
        let b = run_full(&["robustness", "--n", "8", "--seed", "42"]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn robustness_recovery_on_leaves_no_wedge_and_exits_by_worst_cell() {
        // Recovery defaults to on: the matrix must contain no
        // DEADLOCK/TIMEOUT cells, and the exit code reports the worst
        // surviving outcome (0 all-ok, 5 recovered, 6 degraded).
        let on = run_full(&["robustness", "--n", "8", "--procs", "4", "--seed", "7"]).unwrap();
        assert!(
            on.text.contains("0 deadlocked, 0 timed out, 0 violated"),
            "recovery-on matrix must have no wedged or violated cells: {}",
            on.text
        );
        assert!(matches!(on.code, 0 | 5 | 6), "unexpected exit code {}", on.code);
        assert!(on.text.contains("recovered("), "loss cells should heal: {}", on.text);

        // Recovery off: broadcast loss wedges dedicated-bus schemes, and
        // the deadlock exit code wins over the qualified-success codes.
        let off = run_full(&[
            "robustness",
            "--n",
            "8",
            "--procs",
            "4",
            "--seed",
            "7",
            "--recovery",
            "off",
        ])
        .unwrap();
        assert!(
            !off.text.contains("0 deadlocked"),
            "loss must wedge without recovery: {}",
            off.text
        );
        assert!(off.text.contains("recovery off"), "{}", off.text);
        assert_eq!(off.code, 3, "{}", off.text);
    }

    #[test]
    fn robustness_writes_json_matrix() {
        let dir = std::env::temp_dir().join("datasync_cli_robustness_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("matrix.json");
        let out = run(&["robustness", "--n", "6", "--seed", "3", "--json", path.to_str().unwrap()])
            .unwrap();
        assert!(out.contains("wrote"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"tally\""), "{json}");
        assert!(json.contains("\"intensities\": [0, 25, 50, 75]"), "{json}");
        assert!(run(&["robustness", "--n", "6", "--json", "/nonexistent/dir/m.json"]).is_err());
    }

    #[test]
    fn robustness_rejects_unknown_recovery_policy() {
        let e = run(&["robustness", "--recovery", "maybe"]).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("repair-only"), "{}", e.message);
    }

    #[test]
    fn non_robustness_commands_exit_zero() {
        for words in [&["analyze", "--n", "8"][..], &["simulate", "--n", "8"], &["help"]] {
            assert_eq!(run_full(words).unwrap().code, 0, "{words:?}");
        }
    }

    #[test]
    fn errors_are_helpful() {
        assert!(run(&["bogus"]).is_err());
        assert!(run(&["simulate", "--scheme", "nope"]).is_err());
        assert!(run(&["analyze", "--loop", "nope"]).is_err());
        assert!(run(&["analyze", "--typo", "1"]).is_err());
    }

    #[test]
    fn argument_errors_exit_2() {
        assert_eq!(run(&["bogus"]).unwrap_err().code, 2);
        assert_eq!(run(&["simulate", "--scheme", "nope"]).unwrap_err().code, 2);
        assert_eq!(run(&["simulate", "--procs", "0"]).unwrap_err().code, 2);
        assert_eq!(run(&["compare", "--procs", "0"]).unwrap_err().code, 2);
        assert_eq!(run(&["robustness", "--procs", "0"]).unwrap_err().code, 2);
        assert_eq!(run(&["robustness", "--max-cycles", "0"]).unwrap_err().code, 2);
        let e = run(&["robustness", "--seed"]).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("--seed requires a value"), "{}", e.message);
    }

    #[test]
    fn sim_errors_map_to_distinct_exit_codes() {
        use datasync_sim::SimError;
        let d = CliError::from(SimError::Deadlock {
            cycle: 99,
            spinning: vec![1, 3],
            detail: vec!["waiting V0 >= 5".into(), "retrying poll".into()],
        });
        assert_eq!(d.code, 3);
        assert!(d.message.contains("P1: waiting V0 >= 5"), "{}", d.message);
        assert!(d.message.contains("P3: retrying poll"));
        let t = CliError::from(SimError::Timeout { max_cycles: 1000 });
        assert_eq!(t.code, 4);
        assert!(t.message.contains("1000"));
        let b = CliError::from(SimError::BadConfig("no processors".into()));
        assert_eq!(b.code, 2);
    }

    #[test]
    fn help_shows_usage() {
        let out = run(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("robustness"));
        assert!(out.contains("perf"));
        assert!(out.contains("EXIT CODES"));
        assert!(out.contains("--recovery"));
        assert!(out.contains("5 completed but only via recovery"));
    }

    #[test]
    fn perf_writes_json_report() {
        let dir = std::env::temp_dir().join("datasync_cli_perf_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_sim.json");
        let out = run(&["perf", "--quick", "--out", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("fast-forward kernel"), "{out}");
        assert!(out.contains("wrote"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"fast_forward_speedup\""), "{json}");
        assert!(json.contains("\"combined_speedup\""), "{json}");
        assert!(run(&["perf", "--out", "/nonexistent/dir/x.json", "--quick"]).is_err());
    }

    #[test]
    fn trace_writes_valid_chrome_json() {
        let dir = std::env::temp_dir().join("datasync_cli_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let out =
            run(&["trace", "--n", "12", "--procs", "4", "--out", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("captured"), "{out}");
        assert!(out.contains("wrote"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["), "{}", &json[..60.min(json.len())]);
        assert!(json.contains("\"ph\":\"X\""), "no complete events");
        assert!(json.contains("\"name\":\"process_name\""), "no metadata");
        assert!(run(&["trace", "--out", "/nonexistent/dir/t.json"]).is_err());
        assert!(run(&["trace", "--events", "0"]).is_err());
    }

    #[test]
    fn metrics_prints_table() {
        let out = run(&["metrics", "--n", "16", "--procs", "4"]).unwrap();
        assert!(out.contains("makespan"), "{out}");
        assert!(out.contains("occupancy"), "{out}");
        assert!(out.contains("waits"), "{out}");
    }

    #[test]
    fn metrics_every_scheme() {
        for s in
            ["process", "process-basic", "statement", "reference", "instance", "barrier-phased"]
        {
            let out = run(&["metrics", "--n", "12", "--scheme", s, "--procs", "4"]).unwrap();
            assert!(out.contains("occupancy"), "{s}: {out}");
        }
    }

    #[test]
    fn compare_table_has_metrics_columns() {
        let out = run(&["compare", "--n", "16", "--procs", "4"]).unwrap();
        assert!(out.contains("dbus%"), "{out}");
        assert!(out.contains("sync ops"), "{out}");
        assert!(out.contains("PC"), "{out}");
        assert!(out.contains("key"), "{out}");
    }

    #[test]
    fn analyze_from_file() {
        let dir = std::env::temp_dir().join("datasync_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("loop.txt");
        std::fs::write(&path, "DO I = 1, 30\n  S1: A[I] = A[I-1] @6\nEND DO\n").unwrap();
        let out = run(&["analyze", "--file", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("S1 -> S1 (flow, d=1)"), "{out}");
        assert!(out.contains("delay"));
        assert!(run(&["analyze", "--file", "/nonexistent/x.txt"]).is_err());
    }

    #[test]
    fn wavefront_on_relaxation() {
        let out = run(&["wavefront", "--loop", "relaxation", "--n", "10"]).unwrap();
        assert!(out.contains("lambda = (1, 1)"), "{out}");
        assert!(run(&["wavefront", "--loop", "fig21"]).is_err());
    }

    #[test]
    fn unroll_fig21() {
        let out = run(&["unroll", "--n", "32", "--factor", "4"]).unwrap();
        assert!(out.contains("S1@0"));
        assert!(out.contains("doacross"));
        assert!(run(&["unroll", "--n", "10", "--factor", "3"]).is_err());
    }
}

//! The `datasync` command-line tool: analyze loops, simulate them under
//! every synchronization scheme, compare schemes, and regenerate the
//! paper's experiment tables.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod args;
mod commands;

use args::Parsed;

/// Usage text printed on argument errors.
pub const USAGE: &str = "\
datasync — Su & Yew (ISCA 1989) data-synchronization toolkit

USAGE:
  datasync analyze   [--loop L] [--n N] [--m M] [--dot]
      Dependence analysis, covering, the Doacross transformation listing,
      and the profitability decision for a loop.
  datasync simulate  [--loop L] [--n N] [--m M] [--scheme S] [--procs P]
                     [--x X] [--banks B] [--timeline]
      Run the loop on the simulated multiprocessor under one scheme.
  datasync compare   [--loop L] [--n N] [--m M] [--procs P] [--x X]
      Run the loop under every scheme and print the comparison table.
  datasync wavefront [--loop L] [--n N] [--m M]
      Derive the wavefront (skewing) schedule of a depth-2 loop.
  datasync unroll    [--loop L] [--n N] [--factor U]
      Unroll a loop and show the re-synchronized Doacross listing.
  datasync reproduce [--quick] [--markdown]
      Regenerate every experiment table of the paper reproduction.

LOOPS (--loop): fig21 (default) | relaxation | nested | branches,
  or --file <path> with the loop language (see datasync_loopir::parse)
SCHEMES (--scheme): process (default) | process-basic | statement |
                    reference | instance | barrier-phased
";

/// Runs the CLI; returns the text to print.
///
/// # Errors
///
/// Returns a user-facing message for bad arguments.
pub fn run(argv: &[String]) -> Result<String, String> {
    let parsed = Parsed::parse(argv)?;
    match parsed.command.as_str() {
        "analyze" => commands::analyze(&parsed),
        "simulate" => commands::simulate(&parsed),
        "compare" => commands::compare(&parsed),
        "wavefront" => commands::wavefront(&parsed),
        "unroll" => commands::unroll(&parsed),
        "reproduce" => commands::reproduce(&parsed),
        "help" | "--help" => Ok(USAGE.to_string()),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    fn run(words: &[&str]) -> Result<String, String> {
        super::run(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn analyze_fig21() {
        let out = run(&["analyze", "--n", "50"]).unwrap();
        assert!(out.contains("DO I = 1, 50"));
        assert!(out.contains("S1 -> S2 (flow, d=2)"));
        assert!(out.contains("doacross"));
        assert!(out.contains("mark_PC(1);"));
        assert!(out.contains("delay"));
    }

    #[test]
    fn analyze_all_loops() {
        for l in ["fig21", "relaxation", "nested", "branches"] {
            let out = run(&["analyze", "--loop", l, "--n", "8", "--m", "5"]).unwrap();
            assert!(out.contains("dependences"), "{l}: {out}");
        }
    }

    #[test]
    fn simulate_every_scheme() {
        for s in ["process", "process-basic", "statement", "reference", "instance", "barrier-phased"] {
            let out =
                run(&["simulate", "--n", "16", "--scheme", s, "--procs", "4", "--x", "8"]).unwrap();
            assert!(out.contains("makespan"), "{s}: {out}");
            assert!(out.contains("violations: 0"), "{s}: {out}");
        }
    }

    #[test]
    fn simulate_with_banked_memory() {
        let out = run(&["simulate", "--n", "12", "--banks", "8"]).unwrap();
        assert!(out.contains("violations: 0"));
    }

    #[test]
    fn simulate_with_timeline() {
        let out = run(&["simulate", "--n", "12", "--timeline"]).unwrap();
        assert!(out.contains("P0"));
        assert!(out.contains("cycles/column"));
    }

    #[test]
    fn compare_prints_table() {
        let out = run(&["compare", "--n", "16", "--procs", "4"]).unwrap();
        assert!(out.contains("process-oriented"));
        assert!(out.contains("reference-based"));
        assert!(out.contains("barrier-phased"));
    }

    #[test]
    fn errors_are_helpful() {
        assert!(run(&["bogus"]).is_err());
        assert!(run(&["simulate", "--scheme", "nope"]).is_err());
        assert!(run(&["analyze", "--loop", "nope"]).is_err());
        assert!(run(&["analyze", "--typo", "1"]).is_err());
    }

    #[test]
    fn help_shows_usage() {
        assert!(run(&["help"]).unwrap().contains("USAGE"));
    }

    #[test]
    fn analyze_from_file() {
        let dir = std::env::temp_dir().join("datasync_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("loop.txt");
        std::fs::write(&path, "DO I = 1, 30\n  S1: A[I] = A[I-1] @6\nEND DO\n").unwrap();
        let out = run(&["analyze", "--file", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("S1 -> S1 (flow, d=1)"), "{out}");
        assert!(out.contains("delay"));
        assert!(run(&["analyze", "--file", "/nonexistent/x.txt"]).is_err());
    }

    #[test]
    fn wavefront_on_relaxation() {
        let out = run(&["wavefront", "--loop", "relaxation", "--n", "10"]).unwrap();
        assert!(out.contains("lambda = (1, 1)"), "{out}");
        assert!(run(&["wavefront", "--loop", "fig21"]).is_err());
    }

    #[test]
    fn unroll_fig21() {
        let out = run(&["unroll", "--n", "32", "--factor", "4"]).unwrap();
        assert!(out.contains("S1@0"));
        assert!(out.contains("doacross"));
        assert!(run(&["unroll", "--n", "10", "--factor", "3"]).is_err());
    }
}

//! The `datasync` command-line tool: analyze loops, simulate them under
//! every synchronization scheme, compare schemes, stress them with fault
//! injection, and regenerate the paper's experiment tables.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod args;
mod commands;

use args::Parsed;
use datasync_sim::SimError;

/// Usage text printed on argument errors.
pub const USAGE: &str = "\
datasync — Su & Yew (ISCA 1989) data-synchronization toolkit

USAGE:
  datasync analyze    [--loop L] [--n N] [--m M] [--dot]
      Dependence analysis, covering, the Doacross transformation listing,
      and the profitability decision for a loop.
  datasync simulate   [--loop L] [--n N] [--m M] [--scheme S] [--procs P]
                      [--x X] [--banks B] [--fabric F] [--timeline]
                      [CACHE KNOBS]
      Run the loop on the simulated multiprocessor under one scheme.
  datasync compare    [--loop L] [--n N] [--m M] [--procs P] [--x X]
                      [--fabric F] [CACHE KNOBS]
      Run the loop under every scheme and print the comparison table
      (with hit%/invals/coh-tx columns when caches are on).
  datasync robustness [--n N] [--procs P] [--seed S] [--max-cycles C]
                      [--recovery on|off|repair-only] [--fabric F|all]
                      [--json PATH] [CACHE KNOBS]
      Sweep every scheme across every fault class and intensity; print
      the degradation matrix (ok / recovered / reconfigured / DEGRADED /
      DEADLOCK / TIMEOUT / VIOLATED). Recovery (the self-healing
      sync-bus ladder: gap NACKs, retransmission, watchdog repair,
      fail-stop reconfiguration, fallback degradation) defaults to on;
      --fabric all repeats the grid on every fabric; --json also writes
      the matrix as JSON.
  datasync chaos      [--cases N] [--seed S] [--out-dir DIR]
                      [--replay FILE]
      Fuzz the machine with N seeded random fault plans across random
      schemes, fabrics and sizes; check mode bit-identity, the
      dependence oracle, trace monotonicity and stat conservation on
      every cell. A violated cell is shrunk to a minimal reproducer and
      written to DIR as replayable JSON; --replay re-runs one such file
      byte-exact, or every *.json in a directory (batch triage of a
      quarantine folder) with the worst outcome as the exit code.
  datasync serve      [--addr HOST:PORT] [--state-dir DIR]
                      [--queue-cap N] [--max-cells N]
      Run the sweep service: POST /sweep takes a JSON grid
      (schemes x fabrics x iterations x processors x caches x
      fault-pcts) and streams one JSON line per cell plus a summary
      with an aggregate hash. Results are memoized by canonical content
      hash and journaled to DIR (checksummed, append-only), so a
      killed server resumes with zero recomputation; a full admission
      queue sheds with 429 + Retry-After instead of queueing; cells
      that time out twice are quarantined with a chaos reproducer
      (replay with datasync chaos --replay DIR/quarantine). GET
      /healthz and GET /stats report liveness and counters;
      SIGTERM/SIGINT or POST /shutdown drains gracefully.
  datasync wavefront  [--loop L] [--n N] [--m M]
      Derive the wavefront (skewing) schedule of a depth-2 loop.
  datasync unroll     [--loop L] [--n N] [--factor U]
      Unroll a loop and show the re-synchronized Doacross listing.
  datasync reproduce  [--quick] [--markdown]
      Regenerate every experiment table of the paper reproduction.
  datasync perf       [--out PATH] [--quick] [--scale]
                      [--check] [--baseline PATH]
      Self-benchmark: fast-forward kernel vs per-cycle reference stepping
      and parallel vs serial sweep throughput; writes BENCH_sim.json.
      --scale instead sweeps every scheme across P = 8 → 1024 processors
      plus a barrier hot-spot ablation of the flat vs clustered fabrics
      out to P = 4096, and writes the curves to BENCH_scale.json. --check
      re-measures the kernel (warm-up, median of five) against the
      committed baseline (--baseline, default BENCH_sim.json) and exits 9
      on a >15% throughput regression — the CI perf gate.
  datasync trace      [--loop L] [--n N] [--m M] [--scheme S] [--procs P]
                      [--x X] [--banks B] [--fabric F] [--events E]
                      [--out PATH] [CACHE KNOBS]
      Run one scheme with the event ring enabled and export a Chrome
      trace_event JSON (open in chrome://tracing or ui.perfetto.dev).
  datasync metrics    [--loop L] [--n N] [--m M] [--scheme S] [--procs P]
                      [--x X] [--banks B] [--fabric F] [CACHE KNOBS]
      Run one scheme and print the derived metrics table: bus occupancy,
      bank conflicts, per-variable sync traffic, wait-time histograms.

LOOPS (--loop): fig21 (default) | relaxation | nested | branches,
  or --file <path> with the loop language (see datasync_loopir::parse)
SCHEMES (--scheme): process (default) | process-basic | statement |
                    reference | instance | barrier-phased
FABRICS (--fabric): dedicated (default, the paper's §6 sync bus) |
                    shared (sync arbitrates against data traffic on one
                    bus) | ideal (zero-latency oracle upper bound) |
                    clustered (two-level: per-cluster sync buses joined
                    by a coalescing bridge; --clusters N buses, N must
                    divide --procs (default 4), --bridge-latency L
                    cycles per forward (2), --coalesce-window W cycles
                    to batch same-variable forwards (4))
CACHE KNOBS: --cache none|mesi|dragon (default none — the paper's
  cacheless machine) gives every processor a private cache under the
  data bus with the chosen coherence protocol; --cache-sets S (64),
  --cache-assoc W (2) and --cache-line WORDS (4) set the geometry;
  --sync-uncached keeps synchronization variables out of the caches
  (the §6 cached-vs-uncached sync ablation axis)

EXIT CODES: 0 success | 2 bad arguments or config | 3 deadlock detected |
            4 simulation timed out | 5 completed but only via recovery |
            6 completed only on the degraded fallback scheme |
            7 dependence order violated |
            8 completed but only by reconfiguring around a dead processor |
            9 perf check found a throughput regression |
            10 serve runtime failure (bind, journal or accept loop)
";

/// The `datasync` process exit codes — the tool's scripting contract,
/// documented in the README and [`USAGE`]. This enum is the single
/// source of truth: every `CliError`/`CliOutput` code is produced from
/// it, and [`ExitCode::worst`] is how multi-run commands (the
/// robustness sweep) fold many outcomes into one process code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitCode {
    /// `0` — clean success.
    Success,
    /// `2` — bad arguments or machine config.
    Usage,
    /// `3` — deadlock/livelock detected.
    Deadlock,
    /// `4` — simulation hit its cycle cap.
    Timeout,
    /// `5` — completed, but only via self-healing recovery.
    Recovered,
    /// `6` — completed, but only on the degraded fallback scheme.
    Degraded,
    /// `7` — dependence order violated.
    Violated,
    /// `8` — completed, but only by reconfiguring work off a
    /// fail-stopped processor onto the survivor quorum.
    Reconfigured,
    /// `9` — the gating perf check measured a throughput regression
    /// beyond its tolerance.
    PerfRegression,
    /// `10` — the sweep service failed at runtime (bind, journal I/O,
    /// or the accept loop), as opposed to `2` for bad serve arguments.
    ServeFailure,
}

impl ExitCode {
    /// Every documented exit code.
    pub const ALL: [ExitCode; 10] = [
        ExitCode::Success,
        ExitCode::Usage,
        ExitCode::Deadlock,
        ExitCode::Timeout,
        ExitCode::Recovered,
        ExitCode::Degraded,
        ExitCode::Violated,
        ExitCode::Reconfigured,
        ExitCode::PerfRegression,
        ExitCode::ServeFailure,
    ];

    /// The numeric process exit code.
    pub fn code(self) -> i32 {
        match self {
            ExitCode::Success => 0,
            ExitCode::Usage => 2,
            ExitCode::Deadlock => 3,
            ExitCode::Timeout => 4,
            ExitCode::Recovered => 5,
            ExitCode::Degraded => 6,
            ExitCode::Violated => 7,
            ExitCode::Reconfigured => 8,
            ExitCode::PerfRegression => 9,
            ExitCode::ServeFailure => 10,
        }
    }

    /// Inverse of [`ExitCode::code`] (`None` for undocumented numbers).
    pub fn from_code(code: i32) -> Option<ExitCode> {
        ExitCode::ALL.into_iter().find(|e| e.code() == code)
    }

    /// Severity rank for [`ExitCode::worst`]: correctness failures
    /// dominate liveness failures dominate usage errors dominate
    /// qualified successes dominate clean success.
    fn severity(self) -> u8 {
        match self {
            ExitCode::Success => 0,
            ExitCode::Recovered => 1,
            ExitCode::Reconfigured => 2,
            ExitCode::Degraded => 3,
            ExitCode::Usage => 4,
            ExitCode::PerfRegression => 5,
            ExitCode::ServeFailure => 6,
            ExitCode::Timeout => 7,
            ExitCode::Deadlock => 8,
            ExitCode::Violated => 9,
        }
    }

    /// The more severe of two outcomes — the combinator multi-run
    /// commands fold with, so scripts branching on the process code see
    /// the worst thing that happened.
    pub fn worst(self, other: ExitCode) -> ExitCode {
        if other.severity() > self.severity() {
            other
        } else {
            self
        }
    }
}

/// A successful CLI invocation: the text to print plus the process exit
/// code. Code `0` is a clean success; the robustness sweep reports
/// qualified successes (`5` recovered, `6` degraded) and detected
/// failures (`3`/`4`/`7`) through the same channel so scripts can branch
/// on the worst outcome in the matrix while still receiving the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliOutput {
    /// Text for stdout.
    pub text: String,
    /// Process exit code (`0` unless a subcommand reports a qualified
    /// outcome).
    pub code: i32,
}

/// A CLI failure: a user-facing message plus the process exit code.
///
/// Exit codes are part of the tool's contract (scripts branch on them):
/// `2` for argument/config errors, `3` for a detected deadlock or
/// livelock, `4` for a simulation that hit its cycle cap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable description (multi-line for deadlocks: one line per
    /// stuck processor).
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError { message, code: ExitCode::Usage.code() }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError { message: message.to_string(), code: ExitCode::Usage.code() }
    }
}

impl From<SimError> for CliError {
    fn from(e: SimError) -> Self {
        match e {
            SimError::Deadlock { cycle, spinning, detail } => {
                let mut message = format!("deadlock detected at cycle {cycle}; stuck processors:");
                for (p, d) in spinning.iter().zip(&detail) {
                    message.push_str(&format!("\n  P{p}: {d}"));
                }
                if detail.is_empty() {
                    for p in &spinning {
                        message.push_str(&format!("\n  P{p}"));
                    }
                }
                CliError { message, code: ExitCode::Deadlock.code() }
            }
            SimError::Timeout { max_cycles } => CliError {
                message: format!("simulation exceeded {max_cycles} cycles"),
                code: ExitCode::Timeout.code(),
            },
            SimError::BadConfig(msg) => CliError {
                message: format!("invalid machine config: {msg}"),
                code: ExitCode::Usage.code(),
            },
        }
    }
}

/// Runs the CLI; returns the text to print plus the exit code.
///
/// # Errors
///
/// Returns a [`CliError`] carrying the message and the exit code the
/// process should use.
pub fn run(argv: &[String]) -> Result<CliOutput, CliError> {
    let parsed = Parsed::parse(argv)?;
    let ok = |text: String| CliOutput { text, code: 0 };
    match parsed.command.as_str() {
        "analyze" => commands::analyze(&parsed).map(ok),
        "simulate" => commands::simulate(&parsed).map(ok),
        "compare" => commands::compare(&parsed).map(ok),
        "robustness" => commands::robustness(&parsed),
        "chaos" => commands::chaos(&parsed),
        "serve" => commands::serve(&parsed),
        "wavefront" => commands::wavefront(&parsed).map(ok),
        "unroll" => commands::unroll(&parsed).map(ok),
        "reproduce" => commands::reproduce(&parsed).map(ok),
        "perf" => commands::perf(&parsed).map(ok),
        "trace" => commands::trace(&parsed).map(ok),
        "metrics" => commands::metrics(&parsed).map(ok),
        "help" | "--help" => Ok(ok(USAGE.to_string())),
        other => Err(format!("unknown subcommand '{other}'").into()),
    }
}

#[cfg(test)]
mod tests {
    use super::{CliError, CliOutput, ExitCode};

    fn run_full(words: &[&str]) -> Result<CliOutput, CliError> {
        super::run(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    fn run(words: &[&str]) -> Result<String, CliError> {
        run_full(words).map(|o| o.text)
    }

    #[test]
    fn analyze_fig21() {
        let out = run(&["analyze", "--n", "50"]).unwrap();
        assert!(out.contains("DO I = 1, 50"));
        assert!(out.contains("S1 -> S2 (flow, d=2)"));
        assert!(out.contains("doacross"));
        assert!(out.contains("mark_PC(1);"));
        assert!(out.contains("delay"));
    }

    #[test]
    fn analyze_all_loops() {
        for l in ["fig21", "relaxation", "nested", "branches"] {
            let out = run(&["analyze", "--loop", l, "--n", "8", "--m", "5"]).unwrap();
            assert!(out.contains("dependences"), "{l}: {out}");
        }
    }

    #[test]
    fn simulate_every_scheme() {
        for s in
            ["process", "process-basic", "statement", "reference", "instance", "barrier-phased"]
        {
            let out =
                run(&["simulate", "--n", "16", "--scheme", s, "--procs", "4", "--x", "8"]).unwrap();
            assert!(out.contains("makespan"), "{s}: {out}");
            assert!(out.contains("violations: 0"), "{s}: {out}");
        }
    }

    #[test]
    fn simulate_with_banked_memory() {
        let out = run(&["simulate", "--n", "12", "--banks", "8"]).unwrap();
        assert!(out.contains("violations: 0"));
    }

    #[test]
    fn simulate_with_timeline() {
        let out = run(&["simulate", "--n", "12", "--timeline"]).unwrap();
        assert!(out.contains("P0"));
        assert!(out.contains("cycles/column"));
    }

    #[test]
    fn compare_prints_table() {
        let out = run(&["compare", "--n", "16", "--procs", "4"]).unwrap();
        assert!(out.contains("process-oriented"));
        assert!(out.contains("reference-based"));
        assert!(out.contains("barrier-phased"));
    }

    #[test]
    fn robustness_prints_matrix() {
        let out = run(&["robustness", "--n", "8", "--procs", "4", "--seed", "7"]).unwrap();
        assert!(out.contains("scheme"), "{out}");
        assert!(out.contains("chaos"), "{out}");
        assert!(out.contains("bcast-loss"), "{out}");
        assert!(out.contains("proc-failstop"), "{out}");
        assert!(out.contains("process-oriented"), "{out}");
        assert!(out.contains("classified"), "{out}");
        assert!(out.contains("recovery on"), "{out}");
    }

    #[test]
    fn robustness_is_deterministic() {
        let a = run_full(&["robustness", "--n", "8", "--seed", "42"]).unwrap();
        let b = run_full(&["robustness", "--n", "8", "--seed", "42"]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn robustness_recovery_on_leaves_no_wedge_and_exits_by_worst_cell() {
        // Recovery defaults to on: the matrix must contain no
        // DEADLOCK/TIMEOUT cells, and the exit code reports the worst
        // surviving outcome (0 all-ok, 5 recovered, 6 degraded).
        let on = run_full(&["robustness", "--n", "8", "--procs", "4", "--seed", "7"]).unwrap();
        assert!(
            on.text.contains("0 deadlocked, 0 timed out, 0 violated"),
            "recovery-on matrix must have no wedged or violated cells: {}",
            on.text
        );
        assert!(matches!(on.code, 0 | 5 | 6 | 8), "unexpected exit code {}", on.code);
        assert!(on.text.contains("recovered("), "loss cells should heal: {}", on.text);

        // Recovery off: broadcast loss wedges dedicated-bus schemes, and
        // the deadlock exit code wins over the qualified-success codes.
        let off = run_full(&[
            "robustness",
            "--n",
            "8",
            "--procs",
            "4",
            "--seed",
            "7",
            "--recovery",
            "off",
        ])
        .unwrap();
        assert!(
            !off.text.contains("0 deadlocked"),
            "loss must wedge without recovery: {}",
            off.text
        );
        assert!(off.text.contains("recovery off"), "{}", off.text);
        assert_eq!(off.code, 3, "{}", off.text);
    }

    #[test]
    fn robustness_writes_json_matrix() {
        let dir = std::env::temp_dir().join("datasync_cli_robustness_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("matrix.json");
        let out = run(&["robustness", "--n", "6", "--seed", "3", "--json", path.to_str().unwrap()])
            .unwrap();
        assert!(out.contains("wrote"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"tally\""), "{json}");
        assert!(json.contains("\"intensities\": [0, 25, 50, 75]"), "{json}");
        assert!(run(&["robustness", "--n", "6", "--json", "/nonexistent/dir/m.json"]).is_err());
    }

    #[test]
    fn robustness_rejects_unknown_recovery_policy() {
        let e = run(&["robustness", "--recovery", "maybe"]).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("repair-only"), "{}", e.message);
    }

    #[test]
    fn non_robustness_commands_exit_zero() {
        for words in [&["analyze", "--n", "8"][..], &["simulate", "--n", "8"], &["help"]] {
            assert_eq!(run_full(words).unwrap().code, 0, "{words:?}");
        }
    }

    #[test]
    fn errors_are_helpful() {
        assert!(run(&["bogus"]).is_err());
        assert!(run(&["simulate", "--scheme", "nope"]).is_err());
        assert!(run(&["analyze", "--loop", "nope"]).is_err());
        assert!(run(&["analyze", "--typo", "1"]).is_err());
    }

    #[test]
    fn argument_errors_exit_2() {
        assert_eq!(run(&["bogus"]).unwrap_err().code, 2);
        assert_eq!(run(&["simulate", "--scheme", "nope"]).unwrap_err().code, 2);
        assert_eq!(run(&["simulate", "--procs", "0"]).unwrap_err().code, 2);
        assert_eq!(run(&["compare", "--procs", "0"]).unwrap_err().code, 2);
        assert_eq!(run(&["robustness", "--procs", "0"]).unwrap_err().code, 2);
        assert_eq!(run(&["robustness", "--max-cycles", "0"]).unwrap_err().code, 2);
        let e = run(&["robustness", "--seed"]).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("--seed requires a value"), "{}", e.message);
    }

    #[test]
    fn sim_errors_map_to_distinct_exit_codes() {
        use datasync_sim::SimError;
        let d = CliError::from(SimError::Deadlock {
            cycle: 99,
            spinning: vec![1, 3],
            detail: vec!["waiting V0 >= 5".into(), "retrying poll".into()],
        });
        assert_eq!(d.code, 3);
        assert!(d.message.contains("P1: waiting V0 >= 5"), "{}", d.message);
        assert!(d.message.contains("P3: retrying poll"));
        let t = CliError::from(SimError::Timeout { max_cycles: 1000 });
        assert_eq!(t.code, 4);
        assert!(t.message.contains("1000"));
        let b = CliError::from(SimError::BadConfig("no processors".into()));
        assert_eq!(b.code, 2);
    }

    #[test]
    fn exit_codes_round_trip_and_match_the_readme() {
        // The enum is total over its own codes…
        for e in ExitCode::ALL {
            assert_eq!(ExitCode::from_code(e.code()), Some(e), "{e:?}");
        }
        assert_eq!(ExitCode::from_code(1), None, "1 is deliberately unused");
        assert_eq!(ExitCode::from_code(10), Some(ExitCode::ServeFailure));
        assert_eq!(ExitCode::from_code(11), None);
        // …and exactly matches the codes documented in the README table
        // (`| \`N\` | meaning |` rows) and the USAGE text.
        let readme_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
        let readme = std::fs::read_to_string(readme_path).expect("README.md readable");
        let documented: Vec<i32> = readme
            .lines()
            .filter_map(|l| {
                let cell = l.strip_prefix("| `")?;
                cell.split('`').next()?.parse().ok()
            })
            .collect();
        let mut ours: Vec<i32> = ExitCode::ALL.iter().map(|e| e.code()).collect();
        ours.sort_unstable();
        let mut docs = documented;
        docs.sort_unstable();
        assert_eq!(docs, ours, "README exit-code table out of sync with ExitCode");
        for e in ExitCode::ALL {
            assert!(
                super::USAGE.contains(&e.code().to_string()),
                "USAGE does not mention exit code {}",
                e.code()
            );
        }
    }

    #[test]
    fn worst_combinator_orders_outcomes() {
        use ExitCode::*;
        // Documented precedence: 7 > 3 > 4 > 6 > 8 > 5 > 0.
        for (a, b, expect) in [
            (Success, Recovered, Recovered),
            (Recovered, Reconfigured, Reconfigured),
            (Reconfigured, Degraded, Degraded),
            (Degraded, Timeout, Timeout),
            (Timeout, Deadlock, Deadlock),
            (Deadlock, Violated, Violated),
            (Violated, Success, Violated),
        ] {
            assert_eq!(a.worst(b), expect, "{a:?} vs {b:?}");
            assert_eq!(b.worst(a), expect, "worst must be symmetric");
        }
        assert_eq!(Success.worst(Success), Success);
        // Folding a mixed tally lands on the worst member.
        let folded = [Recovered, Deadlock, Degraded].into_iter().fold(Success, ExitCode::worst);
        assert_eq!(folded, Deadlock);
    }

    #[test]
    fn fabric_flag_threads_through_simulate_and_compare() {
        let ded = run(&["simulate", "--n", "16", "--procs", "4"]).unwrap();
        assert!(ded.contains("fabric: dedicated"), "{ded}");
        for fabric in ["dedicated", "shared", "ideal"] {
            let out = run(&["simulate", "--n", "16", "--procs", "4", "--fabric", fabric]).unwrap();
            assert!(out.contains(&format!("fabric: {fabric}")), "{out}");
            assert!(out.contains("violations: 0"), "{fabric}: {out}");
        }
        // The §6 delta end-to-end: shared must not beat dedicated, and
        // the comparison table carries the fabric column.
        let grab = |text: &str| -> u64 {
            text.lines()
                .find(|l| l.starts_with("makespan:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|w| w.parse().ok())
                .expect("makespan line")
        };
        let shared = run(&["simulate", "--n", "16", "--procs", "4", "--fabric", "shared"]).unwrap();
        assert!(grab(&shared) >= grab(&ded), "shared {shared} vs dedicated {ded}");
        let table = run(&["compare", "--n", "16", "--procs", "4", "--fabric", "shared"]).unwrap();
        assert!(table.contains("fabric"), "{table}");
        assert!(table.contains("shared"), "{table}");
        let e = run(&["simulate", "--fabric", "warp"]).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("ideal"), "{}", e.message);
    }

    #[test]
    fn cache_flags_thread_through_simulate_and_compare() {
        for protocol in ["mesi", "dragon"] {
            let out = run(&["simulate", "--n", "16", "--procs", "4", "--cache", protocol]).unwrap();
            assert!(out.contains("cache:"), "{protocol}: {out}");
            assert!(out.contains("violations: 0"), "{protocol}: {out}");
        }
        // Cacheless output carries no cache line at all.
        let plain = run(&["simulate", "--n", "16", "--procs", "4"]).unwrap();
        assert!(!plain.contains("cache:"), "{plain}");
        // The comparison table grows the cache columns only when asked.
        let table = run(&["compare", "--n", "16", "--procs", "4", "--cache", "mesi"]).unwrap();
        assert!(table.contains("hit%"), "{table}");
        assert!(table.contains("coh tx"), "{table}");
        let plain_table = run(&["compare", "--n", "16", "--procs", "4"]).unwrap();
        assert!(!plain_table.contains("hit%"), "{plain_table}");
        // Geometry overrides and the sync-uncached switch parse.
        let small = run(&[
            "simulate",
            "--n",
            "16",
            "--cache",
            "dragon",
            "--cache-sets",
            "4",
            "--cache-assoc",
            "1",
            "--cache-line",
            "2",
            "--sync-uncached",
        ])
        .unwrap();
        assert!(small.contains("violations: 0"), "{small}");
        // Bad protocol and bad geometry are usage errors.
        let e = run(&["simulate", "--cache", "moesi"]).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("dragon"), "{}", e.message);
        let e = run(&["simulate", "--cache", "mesi", "--cache-sets", "0"]).unwrap_err();
        assert_eq!(e.code, 2);
    }

    #[test]
    fn robustness_fabric_axis() {
        let out =
            run(&["robustness", "--n", "6", "--procs", "4", "--seed", "3", "--fabric", "all"])
                .unwrap();
        assert!(out.contains("fabric dedicated+shared+ideal"), "{out}");
        assert!(out.contains("ideal"), "{out}");
        // 3x the single-fabric matrix: 5 schemes x 9 fault rows x 4
        // intensities x 3 fabrics.
        assert!(out.contains("540 runs classified"), "{out}");
    }

    #[test]
    fn help_shows_usage() {
        let out = run(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("robustness"));
        assert!(out.contains("perf"));
        assert!(out.contains("chaos"));
        assert!(out.contains("--replay"));
        assert!(out.contains("EXIT CODES"));
        assert!(out.contains("--recovery"));
        assert!(out.contains("5 completed but only via recovery"));
        assert!(out.contains("8 completed but only by reconfiguring"));
        assert!(out.contains("datasync serve"));
        assert!(out.contains("--state-dir"));
        assert!(out.contains("Retry-After"));
    }

    #[test]
    fn chaos_soak_exits_clean() {
        let out = run_full(&["chaos", "--cases", "10", "--seed", "1989"]).unwrap();
        assert_eq!(out.code, 0, "{}", out.text);
        assert!(out.text.contains("10 cells"), "{}", out.text);
        assert!(out.text.contains("0 invariant violations"), "{}", out.text);
        assert!(out.text.contains("every cell holds"), "{}", out.text);
    }

    #[test]
    fn chaos_is_deterministic() {
        let a = run_full(&["chaos", "--cases", "8", "--seed", "3"]).unwrap();
        let b = run_full(&["chaos", "--cases", "8", "--seed", "3"]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn chaos_replays_a_reproducer_file() {
        use datasync_bench::chaos::ChaosCase;
        let dir = std::env::temp_dir().join("datasync_cli_chaos_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("case.json");
        std::fs::write(&path, ChaosCase::generate(7, 4).to_json()).unwrap();
        let out = run_full(&["chaos", "--replay", path.to_str().unwrap()]).unwrap();
        assert_eq!(out.code, 0, "{}", out.text);
        assert!(out.text.contains("all machine invariants hold"), "{}", out.text);
        assert!(run(&["chaos", "--replay", "/nonexistent/x.json"]).is_err());
        std::fs::write(&path, "{}").unwrap();
        assert_eq!(run(&["chaos", "--replay", path.to_str().unwrap()]).unwrap_err().code, 2);
    }

    #[test]
    fn chaos_replays_a_directory_of_reproducers() {
        use datasync_bench::chaos::ChaosCase;
        let dir = std::env::temp_dir().join("datasync_cli_chaos_dir_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.json"), ChaosCase::generate(7, 4).to_json()).unwrap();
        std::fs::write(dir.join("b.json"), ChaosCase::generate(9, 4).to_json()).unwrap();
        std::fs::write(dir.join("notes.txt"), "not a reproducer").unwrap();
        let out = run_full(&["chaos", "--replay", dir.to_str().unwrap()]).unwrap();
        assert_eq!(out.code, 0, "{}", out.text);
        assert!(out.text.contains("2 of 2 reproducers hold"), "{}", out.text);
        // An unparsable member aborts the batch as a usage error.
        std::fs::write(dir.join("c.json"), "{}").unwrap();
        assert_eq!(run(&["chaos", "--replay", dir.to_str().unwrap()]).unwrap_err().code, 2);
        // An empty directory replays nothing, successfully.
        let empty = dir.join("empty");
        std::fs::create_dir_all(&empty).unwrap();
        let out = run_full(&["chaos", "--replay", empty.to_str().unwrap()]).unwrap();
        assert_eq!(out.code, 0);
        assert!(out.text.contains("nothing to replay"), "{}", out.text);
    }

    #[test]
    fn serve_rejects_bad_arguments() {
        assert_eq!(run(&["serve", "--queue-cap", "0"]).unwrap_err().code, 2);
        assert_eq!(run(&["serve", "--max-cells", "0"]).unwrap_err().code, 2);
        assert!(run(&["serve", "--typo", "1"]).is_err());
    }

    #[test]
    fn serve_bind_failure_exits_10() {
        let dir = std::env::temp_dir().join("datasync_cli_serve_bind_test");
        std::fs::create_dir_all(&dir).unwrap();
        let e = run(&["serve", "--addr", "not-an-addr", "--state-dir", dir.to_str().unwrap()])
            .unwrap_err();
        assert_eq!(e.code, ExitCode::ServeFailure.code());
        assert!(e.message.contains("cannot bind"), "{}", e.message);
    }

    #[test]
    fn chaos_rejects_bad_arguments() {
        assert_eq!(run(&["chaos", "--cases", "0"]).unwrap_err().code, 2);
        assert!(run(&["chaos", "--typo", "1"]).is_err());
    }

    #[test]
    fn perf_writes_json_report() {
        let dir = std::env::temp_dir().join("datasync_cli_perf_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_sim.json");
        let out = run(&["perf", "--quick", "--out", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("fast-forward kernel"), "{out}");
        assert!(out.contains("wrote"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"fast_forward_speedup\""), "{json}");
        assert!(json.contains("\"combined_speedup\""), "{json}");
        assert!(run(&["perf", "--out", "/nonexistent/dir/x.json", "--quick"]).is_err());
    }

    #[test]
    fn perf_check_gates_against_a_baseline_file() {
        let dir = std::env::temp_dir().join("datasync_cli_perf_check_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        let path_s = path.to_str().unwrap();
        // Any honest measurement clears a floor baseline (a fresh
        // baseline's own re-measurement would be flaky on a loaded
        // host: the report's min-of-N deliberately reads above the
        // check's pessimistic median)…
        std::fs::write(&path, "{\"fast_cycles_per_sec\": 1000.0}\n").unwrap();
        let out = run(&["perf", "--quick", "--check", "--baseline", path_s]).unwrap();
        assert!(out.contains("perf check"), "{out}");
        assert!(out.contains("=> ok"), "{out}");
        // …an impossible baseline fails with the dedicated exit code…
        std::fs::write(&path, "{\"fast_cycles_per_sec\": 1e15}\n").unwrap();
        let e = run(&["perf", "--quick", "--check", "--baseline", path_s]).unwrap_err();
        assert_eq!(e.code, ExitCode::PerfRegression.code());
        assert!(e.message.contains("REGRESSION"), "{}", e.message);
        // …and unusable baselines are argument errors, not regressions.
        std::fs::write(&path, "{\"fast_cycles_per_sec\": null}\n").unwrap();
        assert_eq!(run(&["perf", "--quick", "--check", "--baseline", path_s]).unwrap_err().code, 2);
        assert_eq!(
            run(&["perf", "--quick", "--check", "--baseline", "/nonexistent/b.json"])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(run(&["perf", "--quick", "--baseline", path_s]).unwrap_err().code, 2);
        assert_eq!(run(&["perf", "--quick", "--scale", "--check"]).unwrap_err().code, 2);
    }

    #[test]
    fn perf_scale_writes_the_curve() {
        let dir = std::env::temp_dir().join("datasync_cli_perf_scale_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_scale.json");
        let out = run(&["perf", "--quick", "--scale", "--out", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("cycles/sec by processor count"), "{out}");
        assert!(out.contains("barrier-phased"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"procs\": [8, 16, 32]"), "{json}");
        assert!(json.contains("\"cycles_per_sec\""), "{json}");
        assert!(run(&["perf", "--scale", "--quick", "--out", "/nonexistent/dir/s.json"]).is_err());
    }

    #[test]
    fn trace_writes_valid_chrome_json() {
        let dir = std::env::temp_dir().join("datasync_cli_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let out =
            run(&["trace", "--n", "12", "--procs", "4", "--out", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("captured"), "{out}");
        assert!(out.contains("wrote"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["), "{}", &json[..60.min(json.len())]);
        assert!(json.contains("\"ph\":\"X\""), "no complete events");
        assert!(json.contains("\"name\":\"process_name\""), "no metadata");
        assert!(run(&["trace", "--out", "/nonexistent/dir/t.json"]).is_err());
        assert!(run(&["trace", "--events", "0"]).is_err());
    }

    #[test]
    fn metrics_prints_table() {
        let out = run(&["metrics", "--n", "16", "--procs", "4"]).unwrap();
        assert!(out.contains("makespan"), "{out}");
        assert!(out.contains("occupancy"), "{out}");
        assert!(out.contains("waits"), "{out}");
    }

    #[test]
    fn metrics_every_scheme() {
        for s in
            ["process", "process-basic", "statement", "reference", "instance", "barrier-phased"]
        {
            let out = run(&["metrics", "--n", "12", "--scheme", s, "--procs", "4"]).unwrap();
            assert!(out.contains("occupancy"), "{s}: {out}");
        }
    }

    #[test]
    fn compare_table_has_metrics_columns() {
        let out = run(&["compare", "--n", "16", "--procs", "4"]).unwrap();
        assert!(out.contains("dbus%"), "{out}");
        assert!(out.contains("sync ops"), "{out}");
        assert!(out.contains("PC"), "{out}");
        assert!(out.contains("key"), "{out}");
    }

    #[test]
    fn analyze_from_file() {
        let dir = std::env::temp_dir().join("datasync_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("loop.txt");
        std::fs::write(&path, "DO I = 1, 30\n  S1: A[I] = A[I-1] @6\nEND DO\n").unwrap();
        let out = run(&["analyze", "--file", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("S1 -> S1 (flow, d=1)"), "{out}");
        assert!(out.contains("delay"));
        assert!(run(&["analyze", "--file", "/nonexistent/x.txt"]).is_err());
    }

    #[test]
    fn wavefront_on_relaxation() {
        let out = run(&["wavefront", "--loop", "relaxation", "--n", "10"]).unwrap();
        assert!(out.contains("lambda = (1, 1)"), "{out}");
        assert!(run(&["wavefront", "--loop", "fig21"]).is_err());
    }

    #[test]
    fn unroll_fig21() {
        let out = run(&["unroll", "--n", "32", "--factor", "4"]).unwrap();
        assert!(out.contains("S1@0"));
        assert!(out.contains("doacross"));
        assert!(run(&["unroll", "--n", "10", "--factor", "3"]).is_err());
    }
}

//! Subcommand implementations.

use crate::args::Parsed;
use crate::CliError;
use datasync_loopir::analysis::analyze as analyze_deps;
use datasync_loopir::covering::reduce;
use datasync_loopir::ir::LoopNest;
use datasync_loopir::plan::SyncPlan;
use datasync_loopir::profit::analyze_doacross;
use datasync_loopir::render::{render_doacross, render_loop};
use datasync_loopir::space::IterSpace;
use datasync_loopir::workpatterns;
use datasync_schemes::scheme::Scheme;
use datasync_schemes::{
    BarrierPhased, InstanceBased, ProcessOriented, ReferenceBased, StatementOriented,
};
use datasync_sim::{CacheModel, CoherenceProtocol, FabricKind, MachineConfig};
use std::fmt::Write as _;

/// Parses `--fabric` (defaulting to the paper's dedicated sync bus).
/// `--fabric clustered` opens the two-level geometry knobs:
/// `--clusters N` (must divide P), `--bridge-latency L` and
/// `--coalesce-window W`; giving any of those with a flat fabric is an
/// error so a typo cannot silently fall back to a flat topology.
fn parse_fabric(p: &Parsed) -> Result<FabricKind, String> {
    let word = p.get("fabric").unwrap_or("dedicated");
    let kind = FabricKind::parse(word).ok_or_else(|| {
        format!("unknown --fabric '{word}' (dedicated | shared | ideal | clustered)")
    })?;
    if let FabricKind::Clustered { clusters, bridge_latency, coalesce_window } = kind {
        return Ok(FabricKind::Clustered {
            clusters: p.get_u64("clusters", u64::from(clusters))? as u32,
            bridge_latency: p.get_u64("bridge-latency", u64::from(bridge_latency))? as u32,
            coalesce_window: p.get_u64("coalesce-window", u64::from(coalesce_window))? as u32,
        });
    }
    for knob in ["clusters", "bridge-latency", "coalesce-window"] {
        if p.get(knob).is_some() {
            return Err(format!("--{knob} requires --fabric clustered (got '{word}')"));
        }
    }
    Ok(kind)
}

/// Parses the private-cache knobs: `--cache none|mesi|dragon` selects
/// the coherence protocol (default none — the cacheless machine of the
/// paper), with `--cache-sets`, `--cache-assoc`, `--cache-line`
/// overriding the geometry and `--sync-uncached` keeping sync variables
/// out of the caches.
fn parse_cache(p: &Parsed) -> Result<CacheModel, String> {
    let word = p.get("cache").unwrap_or("none");
    if word == "none" {
        return Ok(CacheModel::None);
    }
    let protocol = CoherenceProtocol::parse(word)
        .ok_or_else(|| format!("unknown --cache '{word}' (none | mesi | dragon)"))?;
    let mut model = CacheModel::private(protocol);
    if let CacheModel::Private { sets, assoc, line_words, cache_sync, .. } = &mut model {
        *sets = p.get_u64("cache-sets", u64::from(*sets))? as u32;
        *assoc = p.get_u64("cache-assoc", u64::from(*assoc))? as u32;
        *line_words = p.get_u64("cache-line", u64::from(*line_words))? as u32;
        *cache_sync = !p.has("sync-uncached");
    }
    Ok(model)
}

/// Builds the selected example loop, or parses one from `--file`.
fn build_loop(p: &Parsed) -> Result<LoopNest, String> {
    if let Some(path) = p.get("file") {
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
        return datasync_loopir::parse::parse_loop(&source).map_err(|e| e.to_string());
    }
    let n = p.get_u64("n", 48)? as i64;
    let m = p.get_u64("m", 8)? as i64;
    match p.get("loop").unwrap_or("fig21") {
        "fig21" => Ok(workpatterns::fig21_loop(n)),
        "relaxation" => Ok(workpatterns::example1_relaxation(n.max(3), 4)),
        "nested" => Ok(workpatterns::example2_nested(n.max(2), m.max(2), 4)),
        "branches" => Ok(workpatterns::example3_branches(n, 4)),
        other => Err(format!("unknown loop '{other}' (fig21 | relaxation | nested | branches)")),
    }
}

/// Builds the selected scheme.
fn build_scheme(p: &Parsed, procs: usize, x: usize) -> Result<Box<dyn Scheme>, String> {
    if procs == 0 {
        return Err("--procs must be at least 1".into());
    }
    if x == 0 {
        return Err("--x must be at least 1".into());
    }
    Ok(match p.get("scheme").unwrap_or("process") {
        "process" => Box::new(ProcessOriented::new(x)),
        "process-basic" => Box::new(ProcessOriented::basic(x)),
        "statement" => Box::new(StatementOriented::new()),
        "reference" => Box::new(ReferenceBased::new()),
        "instance" => Box::new(InstanceBased::new()),
        "barrier-phased" => {
            if !procs.is_power_of_two() {
                return Err("barrier-phased needs a power-of-two --procs".into());
            }
            Box::new(BarrierPhased::new(procs))
        }
        other => Err(format!(
            "unknown scheme '{other}' (process | process-basic | statement | reference | instance | barrier-phased)"
        ))?,
    })
}

/// `datasync analyze`.
pub fn analyze(p: &Parsed) -> Result<String, CliError> {
    p.expect_only(&["loop", "file", "n", "m", "dot"])?;
    let nest = build_loop(p)?;
    let space = IterSpace::of(&nest);
    let graph = analyze_deps(&nest);
    let reduced = reduce(&nest, &graph);
    let mut out = String::new();

    let _ = writeln!(out, "== source ==\n{}", render_loop(&nest));
    let _ = writeln!(out, "== dependences ({}) ==", graph.deps().len());
    for d in graph.deps() {
        let covered = if reduced.deps().contains(d) { "" } else { "   [covered]" };
        let _ = writeln!(out, "  {d}{covered}");
    }
    if p.has("dot") {
        let _ = writeln!(out, "\n== graphviz ==\n{}", graph.to_dot(&nest));
    }
    let linear = reduced.linearized(&space);
    let plan = SyncPlan::build(&nest, &linear);
    let _ = writeln!(out, "\n== Doacross transformation (process-oriented) ==");
    let _ = writeln!(out, "{}", render_doacross(&nest, &plan));

    let decision = analyze_doacross(&nest, &linear);
    let n = space.count();
    let _ = writeln!(
        out,
        "== profitability ==\n  iteration time: {} cycles, delay: {} cycles{}",
        decision.iteration_time,
        decision.delay,
        if decision.doall { " (Doall: no carried dependences)" } else { "" }
    );
    for procs in [2u64, 4, 8] {
        let _ = writeln!(
            out,
            "  P={procs}: estimated speedup {:.2}{}",
            decision.speedup(n, procs),
            if decision.profitable(n, procs, 1.5) { "  -> run as Doacross" } else { "" }
        );
    }
    Ok(out)
}

/// `datasync simulate`.
pub fn simulate(p: &Parsed) -> Result<String, CliError> {
    p.expect_only(&[
        "loop",
        "file",
        "n",
        "m",
        "scheme",
        "procs",
        "x",
        "banks",
        "fabric",
        "clusters",
        "bridge-latency",
        "coalesce-window",
        "timeline",
        "cache",
        "cache-sets",
        "cache-assoc",
        "cache-line",
        "sync-uncached",
    ])?;
    let nest = build_loop(p)?;
    let procs = p.get_u64("procs", 4)? as usize;
    let x = p.get_u64("x", 2 * procs as u64)? as usize;
    let scheme = build_scheme(p, procs, x)?;
    let graph = analyze_deps(&nest);
    let space = IterSpace::of(&nest);
    let compiled = scheme.compile(&nest, &graph, &space);
    let banks = p.get_u64("banks", 0)? as usize;
    let memory_model = if banks == 0 {
        datasync_sim::MemoryModel::BusHeld
    } else {
        datasync_sim::MemoryModel::Banked { banks }
    };
    let config = MachineConfig {
        sync_transport: scheme.natural_transport(),
        sync_fabric: parse_fabric(p)?,
        memory_model,
        cache: parse_cache(p)?,
        ..MachineConfig::with_processors(procs)
    };
    config.validate().map_err(datasync_sim::SimError::BadConfig)?;
    let out = compiled.run(&config)?;
    let violations = compiled.validate(&out);

    let mut text = String::new();
    let _ = writeln!(
        text,
        "scheme: {}   transport: {:?}   fabric: {}",
        scheme.name(),
        config.sync_transport,
        config.sync_fabric
    );
    let _ = writeln!(
        text,
        "iterations: {}   processors: {procs}   sync vars: {}",
        space.count(),
        compiled.storage.vars
    );
    let _ = writeln!(
        text,
        "makespan: {} cycles   utilization: {:.1}%",
        out.stats.makespan,
        out.stats.utilization() * 100.0
    );
    let _ = writeln!(
        text,
        "busy: {}   spin: {}   data tx: {}   broadcasts: {}   polls: {}",
        out.stats.total_busy(),
        out.stats.total_spin(),
        out.stats.data_transactions,
        out.stats.sync_broadcasts,
        out.stats.spin_polls
    );
    if out.metrics.cache.active() {
        let c = out.metrics.cache;
        let _ = writeln!(
            text,
            "cache: {:.1}% hits   invalidations: {}   updates: {}   writebacks: {}   c2c: {}",
            c.hit_rate() * 100.0,
            c.invalidations,
            c.updates,
            c.writebacks,
            c.c2c_transfers
        );
    }
    let _ = writeln!(text, "violations: {}", violations.len());
    for v in violations.iter().take(5) {
        let _ = writeln!(text, "  {v}");
    }
    if p.has("timeline") {
        let _ = writeln!(text, "\n{}", datasync_sim::render_timeline(&out.trace, procs, 100));
    }
    Ok(text)
}

/// `datasync compare`.
pub fn compare(p: &Parsed) -> Result<String, CliError> {
    p.expect_only(&[
        "loop",
        "file",
        "n",
        "m",
        "procs",
        "x",
        "fabric",
        "clusters",
        "bridge-latency",
        "coalesce-window",
        "cache",
        "cache-sets",
        "cache-assoc",
        "cache-line",
        "sync-uncached",
    ])?;
    let nest = build_loop(p)?;
    let procs = p.get_u64("procs", 4)? as usize;
    let x = p.get_u64("x", 2 * procs as u64)? as usize;
    if procs == 0 || x == 0 {
        return Err("--procs and --x must be at least 1".into());
    }
    let graph = analyze_deps(&nest);
    let space = IterSpace::of(&nest);
    let base = MachineConfig {
        cache: parse_cache(p)?,
        ..MachineConfig::with_processors(procs).fabric(parse_fabric(p)?)
    };
    base.validate().map_err(datasync_sim::SimError::BadConfig)?;
    let cached = base.cache.enabled();
    let clustered = base.sync_fabric.is_clustered();
    let rows = datasync_schemes::compare::compare_all(&nest, &graph, &space, &base, x)?;
    let mut text = String::new();
    let _ = write!(
        text,
        "{:<34} {:>7} {:>9} {:>9} {:>9} {:>8} {:>7} {:>6} {:>6} {:>9} {:>9} {:>10}",
        "scheme",
        "kind",
        "fabric",
        "sync vars",
        "makespan",
        "speedup",
        "util%",
        "dbus%",
        "sbus%",
        "sync ops",
        "wait max",
        "violations"
    );
    if clustered {
        let _ = write!(text, " {:>7} {:>8} {:>7}", "bridge%", "bridged", "aggr");
    }
    if cached {
        let _ = write!(text, " {:>6} {:>7} {:>7}", "hit%", "invals", "coh tx");
    }
    text.push('\n');
    for r in rows {
        let _ = write!(
            text,
            "{:<34} {:>7} {:>9} {:>9} {:>9} {:>8.2} {:>7.1} {:>6.1} {:>6.1} {:>9} {:>9} {:>10}",
            r.scheme,
            r.var_kind,
            r.fabric,
            r.sync_vars,
            r.makespan,
            r.speedup,
            r.utilization * 100.0,
            r.data_bus_occupancy * 100.0,
            r.sync_bus_occupancy * 100.0,
            r.sync_ops,
            r.wait_max,
            r.violations
        );
        if clustered {
            let _ = write!(
                text,
                " {:>7.1} {:>8} {:>7}",
                r.bridge_occupancy * 100.0,
                r.bridge_broadcasts,
                r.bridge_coalesced
            );
        }
        if cached {
            let _ = write!(
                text,
                " {:>6.1} {:>7} {:>7}",
                r.cache_hit_rate * 100.0,
                r.cache_invalidations,
                r.cache_coherence
            );
        }
        text.push('\n');
    }
    Ok(text)
}

/// Compiles the selected loop under the selected scheme and builds its
/// natural-transport machine config (shared by `trace` and `metrics`).
fn prepare_run(
    p: &Parsed,
) -> Result<(datasync_schemes::scheme::CompiledLoop, MachineConfig, usize), CliError> {
    let nest = build_loop(p)?;
    let procs = p.get_u64("procs", 4)? as usize;
    let x = p.get_u64("x", 2 * procs as u64)? as usize;
    let scheme = build_scheme(p, procs, x)?;
    let graph = analyze_deps(&nest);
    let space = IterSpace::of(&nest);
    let compiled = scheme.compile(&nest, &graph, &space);
    let banks = p.get_u64("banks", 0)? as usize;
    let memory_model = if banks == 0 {
        datasync_sim::MemoryModel::BusHeld
    } else {
        datasync_sim::MemoryModel::Banked { banks }
    };
    let config = MachineConfig {
        sync_transport: scheme.natural_transport(),
        sync_fabric: parse_fabric(p)?,
        memory_model,
        cache: parse_cache(p)?,
        ..MachineConfig::with_processors(procs)
    };
    config.validate().map_err(datasync_sim::SimError::BadConfig)?;
    Ok((compiled, config, procs))
}

/// `datasync trace`.
pub fn trace(p: &Parsed) -> Result<String, CliError> {
    p.expect_only(&[
        "loop",
        "file",
        "n",
        "m",
        "scheme",
        "procs",
        "x",
        "banks",
        "fabric",
        "clusters",
        "bridge-latency",
        "coalesce-window",
        "out",
        "events",
        "cache",
        "cache-sets",
        "cache-assoc",
        "cache-line",
        "sync-uncached",
    ])?;
    let (compiled, config, procs) = prepare_run(p)?;
    let capacity = p.get_u64("events", 1 << 20)? as usize;
    if capacity == 0 {
        return Err("--events must be at least 1".into());
    }
    let out = compiled.run_traced(&config, capacity)?;
    let json = datasync_sim::render_chrome_trace(&out.trace, &out.events, procs);
    let path = p.get("out").unwrap_or("trace.json");
    std::fs::write(path, &json)
        .map_err(|e| CliError::from(format!("cannot write '{path}': {e}")))?;
    let mut text = String::new();
    let _ = writeln!(
        text,
        "captured {} events over {} cycles ({} dropped by the ring)",
        out.events.len(),
        out.stats.makespan,
        out.events.dropped()
    );
    let _ = writeln!(text, "wrote {path} — open in chrome://tracing or https://ui.perfetto.dev");
    Ok(text)
}

/// `datasync metrics`.
pub fn metrics(p: &Parsed) -> Result<String, CliError> {
    p.expect_only(&[
        "loop",
        "file",
        "n",
        "m",
        "scheme",
        "procs",
        "x",
        "banks",
        "fabric",
        "clusters",
        "bridge-latency",
        "coalesce-window",
        "cache",
        "cache-sets",
        "cache-assoc",
        "cache-line",
        "sync-uncached",
    ])?;
    let (compiled, config, _) = prepare_run(p)?;
    let out = compiled.run(&config)?;
    let mut text = String::new();
    let _ = writeln!(
        text,
        "makespan: {} cycles   utilization: {:.1}%",
        out.stats.makespan,
        out.stats.utilization() * 100.0
    );
    text.push_str(&out.metrics.render_table(&out.stats));
    Ok(text)
}

/// Worst outcome in a robustness tally, as the process exit code:
/// [`crate::ExitCode::worst`] folded over the tally's populated classes.
fn robustness_exit_code(t: &datasync_schemes::robustness::Tally) -> i32 {
    use crate::ExitCode;
    let mut worst = ExitCode::Success;
    for (count, code) in [
        (t.recovered, ExitCode::Recovered),
        (t.reconfigured, ExitCode::Reconfigured),
        (t.degraded, ExitCode::Degraded),
        (t.timeout, ExitCode::Timeout),
        (t.deadlock, ExitCode::Deadlock),
        (t.violated, ExitCode::Violated),
    ] {
        if count > 0 {
            worst = worst.worst(code);
        }
    }
    worst.code()
}

/// `datasync robustness`.
pub fn robustness(p: &Parsed) -> Result<crate::CliOutput, CliError> {
    p.expect_only(&[
        "n",
        "procs",
        "seed",
        "max-cycles",
        "recovery",
        "fabric",
        "clusters",
        "bridge-latency",
        "coalesce-window",
        "json",
        "cache",
        "cache-sets",
        "cache-assoc",
        "cache-line",
        "sync-uncached",
    ])?;
    let n = p.get_u64("n", 16)? as i64;
    let procs = p.get_u64("procs", 4)? as usize;
    let seed = p.get_u64("seed", 1989)?;
    let max_cycles = p.get_u64("max-cycles", 3_000_000)?;
    if max_cycles == 0 {
        return Err("--max-cycles must be at least 1".into());
    }
    let recovery_word = p.get("recovery").unwrap_or("on");
    let recovery = datasync_sim::RecoveryPolicy::parse(recovery_word)
        .ok_or_else(|| format!("unknown --recovery '{recovery_word}' (on | off | repair-only)"))?;
    let fabric_word = p.get("fabric").unwrap_or("dedicated");
    let fabrics: Vec<FabricKind> =
        if fabric_word == "all" { FabricKind::ALL.to_vec() } else { vec![parse_fabric(p)?] };
    let base = MachineConfig {
        max_cycles,
        recovery,
        cache: parse_cache(p)?,
        ..MachineConfig::with_processors(procs)
    };
    base.validate().map_err(datasync_sim::SimError::BadConfig)?;
    let intensities = [0u8, 25, 50, 75];
    let matrix =
        datasync_schemes::robustness::sweep_fabrics(n, &base, &intensities, seed, &fabrics);
    let tally = datasync_schemes::robustness::Tally::of(&matrix);
    let mut text = String::new();
    let fabric_label = fabrics.iter().map(ToString::to_string).collect::<Vec<_>>().join("+");
    let _ = writeln!(
        text,
        "degradation matrix — {} iterations, {procs} processors, fault seed {seed}, \
         recovery {recovery}, fabric {fabric_label}",
        n
    );
    let _ = writeln!(
        text,
        "cells: ok = completed & validated (rN = worst recovery latency), recovered = \
         self-healed (aN actions, hN heal latency), reconfigured = survived a dead \
         processor (xN rescues, pN programs reissued, dN fail-stops), DEGRADED = \
         fallback scheme carried the run, DEADLOCK = detected, TIMEOUT = hit \
         {max_cycles} cycles, VIOLATED = order broken\n"
    );
    text.push_str(&datasync_schemes::robustness::render(&matrix));
    let _ = writeln!(
        text,
        "\n{} runs classified: {} ok, {} recovered, {} reconfigured, {} degraded, \
         {} deadlocked, {} timed out, {} violated",
        tally.total(),
        tally.ok,
        tally.recovered,
        tally.reconfigured,
        tally.degraded,
        tally.deadlock,
        tally.timeout,
        tally.violated
    );
    if let Some(path) = p.get("json") {
        std::fs::write(path, matrix.to_json())
            .map_err(|e| CliError::from(format!("cannot write '{path}': {e}")))?;
        let _ = writeln!(text, "wrote {path}");
    }
    Ok(crate::CliOutput { text, code: robustness_exit_code(&tally) })
}

/// Replays one reproducer file, appending its verdict to `text`.
/// Returns the exit code for that case (0 clean, 7 violated).
fn replay_one(path: &str, text: &mut String) -> Result<i32, CliError> {
    use datasync_bench::chaos::{run_case, ChaosCase};
    let doc = std::fs::read_to_string(path)
        .map_err(|e| CliError::from(format!("cannot read '{path}': {e}")))?;
    let case = ChaosCase::from_json(&doc)?;
    let _ = writeln!(
        text,
        "replaying {path}: scheme {}, fabric {}, N={}, P={}, plan seed {}",
        case.scheme, case.fabric, case.iterations, case.processors, case.plan.seed
    );
    match run_case(&case) {
        Ok(()) => {
            let _ = writeln!(text, "all machine invariants hold");
            Ok(0)
        }
        Err(what) => {
            let _ = writeln!(text, "invariant violated: {what}");
            Ok(crate::ExitCode::Violated.code())
        }
    }
}

/// `datasync chaos`.
pub fn chaos(p: &Parsed) -> Result<crate::CliOutput, CliError> {
    p.expect_only(&["cases", "seed", "out-dir", "replay"])?;
    if let Some(path) = p.get("replay") {
        // A directory batch-replays every *.json inside it (triaging a
        // serve quarantine folder in one command); a file replays alone.
        if std::fs::metadata(path).is_ok_and(|m| m.is_dir()) {
            let mut files: Vec<String> = std::fs::read_dir(path)
                .map_err(|e| CliError::from(format!("cannot read '{path}': {e}")))?
                .filter_map(|entry| {
                    let p = entry.ok()?.path();
                    (p.extension().is_some_and(|x| x == "json") && p.is_file())
                        .then(|| p.to_string_lossy().into_owned())
                })
                .collect();
            files.sort();
            if files.is_empty() {
                return Ok(crate::CliOutput {
                    text: format!("no *.json reproducers in {path} — nothing to replay\n"),
                    code: 0,
                });
            }
            let mut text = String::new();
            let mut failed = 0usize;
            for file in &files {
                if replay_one(file, &mut text)? != 0 {
                    failed += 1;
                }
            }
            let _ = writeln!(text, "{} of {} reproducers hold", files.len() - failed, files.len());
            let code = if failed == 0 { 0 } else { crate::ExitCode::Violated.code() };
            if failed > 0 {
                return Err(CliError { message: text, code });
            }
            return Ok(crate::CliOutput { text, code });
        }
        let mut text = String::new();
        let code = replay_one(path, &mut text)?;
        if code != 0 {
            return Err(CliError { message: text, code });
        }
        return Ok(crate::CliOutput { text, code });
    }
    let cases = p.get_u64("cases", 100)? as usize;
    if cases == 0 {
        return Err("--cases must be at least 1".into());
    }
    let seed = p.get_u64("seed", 1989)?;
    let report = datasync_bench::chaos::soak(cases, seed);
    let mut text = String::new();
    let _ = writeln!(
        text,
        "chaos soak: {} cells from seed {seed} — {} invariant violations",
        report.cases,
        report.failures.len()
    );
    if report.failures.is_empty() {
        let _ = writeln!(
            text,
            "every cell holds: mode bit-identity, dependence order, trace \
             monotonicity, stat conservation"
        );
        return Ok(crate::CliOutput { text, code: 0 });
    }
    let dir = std::path::PathBuf::from(p.get("out-dir").unwrap_or("."));
    for f in &report.failures {
        let path = dir.join(format!("chaos_repro_{}_{}.json", report.seed, f.index));
        std::fs::write(&path, f.minimal.to_json())
            .map_err(|e| CliError::from(format!("cannot write '{}': {e}", path.display())))?;
        let _ = writeln!(
            text,
            "cell {}: {}\n  minimal reproducer -> {} (datasync chaos --replay)",
            f.index,
            f.what,
            path.display()
        );
    }
    Ok(crate::CliOutput { text, code: crate::ExitCode::Violated.code() })
}

/// `datasync serve`: run the sweep service until drained by
/// SIGTERM/SIGINT or `POST /shutdown`.
pub fn serve(p: &Parsed) -> Result<crate::CliOutput, CliError> {
    use datasync_serve::{ServeConfig, Server};
    p.expect_only(&["addr", "state-dir", "queue-cap", "max-cells"])?;
    let defaults = ServeConfig::default();
    let queue_cap = p.get_u64("queue-cap", defaults.queue_cap as u64)? as usize;
    let max_cells = p.get_u64("max-cells", defaults.max_cells as u64)? as usize;
    if queue_cap == 0 {
        return Err("--queue-cap must be at least 1".into());
    }
    if max_cells == 0 {
        return Err("--max-cells must be at least 1".into());
    }
    let config = ServeConfig {
        addr: p.get("addr").unwrap_or(&defaults.addr).to_string(),
        state_dir: p.get("state-dir").map_or(defaults.state_dir, std::path::PathBuf::from),
        queue_cap,
        max_cells,
        watch_signals: true,
    };
    datasync_serve::signal::install_handlers();
    let server = Server::bind(config).map_err(|e| CliError {
        message: format!("serve failed to start: {e}"),
        code: crate::ExitCode::ServeFailure.code(),
    })?;
    // The ready line goes out before the accept loop starts so wrapper
    // scripts (and the CI smoke) can wait on it.
    println!("datasync serve: {}", server.boot_report());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let summary = server.run();
    let mut text = String::new();
    let _ = writeln!(
        text,
        "drained: {} requests, {} sweeps, {} cells computed, {} cached, \
         {} quarantined, {} shed",
        summary.requests,
        summary.sweeps,
        summary.cells_computed,
        summary.cells_cached,
        summary.cells_quarantined,
        summary.shed
    );
    let code = if summary.drained_clean { 0 } else { crate::ExitCode::ServeFailure.code() };
    Ok(crate::CliOutput { text, code })
}

/// `datasync wavefront`.
pub fn wavefront(p: &Parsed) -> Result<String, CliError> {
    p.expect_only(&["loop", "file", "n", "m"])?;
    let nest = build_loop(p)?;
    if nest.depth() != 2 {
        return Err("wavefront needs a depth-2 loop (--loop relaxation | nested)".into());
    }
    let graph = analyze_deps(&nest);
    let space = IterSpace::of(&nest);
    let mut text = String::new();
    match datasync_loopir::wavefront::wavefront_schedule(&graph, &space) {
        None => {
            let _ = writeln!(text, "no legal wavefront schedule (serial chain in the graph)");
        }
        Some(ws) => {
            let _ = writeln!(
                text,
                "lambda = ({}, {}): {} wavefronts, widest {} iterations, {} total",
                ws.lambda.0,
                ws.lambda.1,
                ws.parallel_steps(),
                ws.max_width(),
                ws.total()
            );
            for (i, wave) in ws.waves.iter().enumerate().take(8) {
                let _ = writeln!(text, "  wave {i:>3}: {} iterations", wave.len());
            }
            if ws.waves.len() > 8 {
                let _ = writeln!(text, "  ... ({} more)", ws.waves.len() - 8);
            }
        }
    }
    Ok(text)
}

/// `datasync unroll`.
pub fn unroll(p: &Parsed) -> Result<String, CliError> {
    p.expect_only(&["loop", "file", "n", "factor"])?;
    let nest = build_loop(p)?;
    let factor = p.get_u64("factor", 4)? as u32;
    if !datasync_loopir::transform::can_unroll(&nest, factor) {
        return Err(format!(
            "cannot unroll this loop by {factor} (needs a singly-nested, branch-free loop with a divisible iteration count)"
        )
        .into());
    }
    let un = datasync_loopir::transform::unroll(&nest, factor);
    let graph = reduce(&un, &analyze_deps(&un));
    let space = IterSpace::of(&un);
    let plan = SyncPlan::build(&un, &graph.linearized(&space));
    let mut text = String::new();
    let _ = writeln!(text, "{}", render_loop(&un));
    let _ = writeln!(text, "{}", render_doacross(&un, &plan));
    let _ = writeln!(
        text,
        "{} iterations x {} sync steps (was {} x original steps before unrolling)",
        space.count(),
        plan.n_steps(),
        nest.iter_count()
    );
    Ok(text)
}

/// `datasync perf` (plus its `--scale` and `--check` modes).
pub fn perf(p: &Parsed) -> Result<String, CliError> {
    p.expect_only(&["out", "quick", "scale", "check", "baseline"])?;
    let quick = p.has("quick");
    if p.has("scale") {
        if p.has("check") {
            return Err("--scale and --check are mutually exclusive".into());
        }
        let report = datasync_bench::scale::run(quick);
        let path = p.get("out").unwrap_or("BENCH_scale.json");
        std::fs::write(path, report.to_json())
            .map_err(|e| CliError::from(format!("cannot write '{path}': {e}")))?;
        let mut text = report.summary();
        let _ = writeln!(text, "\nwrote {path}");
        return Ok(text);
    }
    if p.has("check") {
        let path = p.get("baseline").unwrap_or("BENCH_sim.json");
        let baseline = std::fs::read_to_string(path)
            .map_err(|e| CliError::from(format!("cannot read baseline '{path}': {e}")))?;
        let verdict = datasync_bench::perf::check(&baseline, quick)
            .map_err(|e| CliError::from(format!("unusable baseline '{path}': {e}")))?;
        let text = format!("{} (baseline {path})\n", verdict.summary());
        if verdict.pass() {
            return Ok(text);
        }
        return Err(CliError { message: text, code: crate::ExitCode::PerfRegression.code() });
    }
    if p.has("baseline") || p.get("baseline").is_some() {
        return Err("--baseline only applies to --check".into());
    }
    let report = datasync_bench::perf::run(quick);
    let path = p.get("out").unwrap_or("BENCH_sim.json");
    std::fs::write(path, report.to_json())
        .map_err(|e| CliError::from(format!("cannot write '{path}': {e}")))?;
    let mut text = report.summary();
    let _ = writeln!(text, "\nwrote {path}");
    Ok(text)
}

/// `datasync reproduce`.
pub fn reproduce(p: &Parsed) -> Result<String, CliError> {
    p.expect_only(&["quick", "markdown"])?;
    let mut text = String::new();
    for table in datasync_bench::run_all(p.has("quick")) {
        if p.has("markdown") {
            let _ = writeln!(text, "{}", table.to_markdown());
        } else {
            let _ = writeln!(text, "{table}");
        }
    }
    Ok(text)
}

//! The `datasync` command-line tool.
//!
//! Exit codes: `0` success, `2` bad arguments or machine config (usage is
//! printed), `3` deadlock/livelock detected (stuck processors are
//! listed), `4` simulation timed out, `5` the robustness matrix completed
//! but only via self-healing recovery, `6` it completed only on the
//! degraded fallback scheme, `7` a run violated dependence order.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match datasync_cli::run(&args) {
        Ok(output) => {
            print!("{}", output.text);
            if output.code != 0 {
                std::process::exit(output.code);
            }
        }
        Err(e) => {
            eprintln!("error: {}", e.message);
            if e.code == 2 {
                eprintln!();
                eprint!("{}", datasync_cli::USAGE);
            }
            std::process::exit(e.code);
        }
    }
}

//! The `datasync` command-line tool.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match datasync_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprint!("{}", datasync_cli::USAGE);
            std::process::exit(2);
        }
    }
}

//! The `datasync` command-line tool.
//!
//! Exit codes: `0` success, `2` bad arguments or machine config (usage is
//! printed), `3` deadlock/livelock detected (stuck processors are
//! listed), `4` simulation timed out.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match datasync_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {}", e.message);
            if e.code == 2 {
                eprintln!();
                eprint!("{}", datasync_cli::USAGE);
            }
            std::process::exit(e.code);
        }
    }
}

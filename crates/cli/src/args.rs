//! Minimal `--flag value` argument parsing (keeping the workspace inside
//! the offline dependency allowlist).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options and bare
/// `--switch` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parsed {
    /// First positional argument.
    pub command: String,
    options: HashMap<String, String>,
    switches: Vec<String>,
}

impl Parsed {
    /// Parses `args` (without the program name).
    ///
    /// # Errors
    ///
    /// Rejects missing subcommands, options without values and stray
    /// positionals.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut it = args.iter().peekable();
        let command = it.next().ok_or("missing subcommand")?.clone();
        if command.starts_with('-') {
            return Err(format!("expected a subcommand, got option '{command}'"));
        }
        let mut options = HashMap::new();
        let mut switches = Vec::new();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument '{arg}'"));
            };
            if let Some((k, v)) = name.split_once('=') {
                options.insert(k.to_string(), v.to_string());
            } else if it.peek().is_some_and(|next| !next.starts_with("--")) {
                options.insert(name.to_string(), it.next().expect("peeked").clone());
            } else {
                switches.push(name.to_string());
            }
        }
        Ok(Self { command, options, switches })
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Integer option with a default.
    ///
    /// # Errors
    ///
    /// Rejects unparsable values, and `--key` given with no value (a
    /// trailing value-option parses as a bare switch otherwise, silently
    /// falling back to the default).
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        if self.has(key) {
            return Err(format!("--{key} requires a value"));
        }
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} expects an integer, got '{v}'")),
        }
    }

    /// Bare switch presence.
    pub fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }

    /// Rejects unknown options/switches (catches typos).
    ///
    /// # Errors
    ///
    /// Lists the first unrecognized name.
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), String> {
        for k in self.options.keys().chain(self.switches.iter()) {
            if !allowed.contains(&k.as_str()) {
                return Err(format!("unknown option '--{k}'"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Parsed, String> {
        Parsed::parse(&words.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn basic_forms() {
        let p = parse(&["simulate", "--loop", "fig21", "--n=64", "--timeline"]).unwrap();
        assert_eq!(p.command, "simulate");
        assert_eq!(p.get("loop"), Some("fig21"));
        assert_eq!(p.get_u64("n", 0).unwrap(), 64);
        assert!(p.has("timeline"));
        assert!(!p.has("quick"));
    }

    #[test]
    fn defaults_and_errors() {
        let p = parse(&["compare"]).unwrap();
        assert_eq!(p.get_u64("n", 48).unwrap(), 48);
        assert!(parse(&[]).is_err());
        assert!(parse(&["--loop", "x"]).is_err());
        assert!(parse(&["run", "extra"]).is_err());
        let bad = parse(&["x", "--n", "abc"]).unwrap();
        assert!(bad.get_u64("n", 1).is_err());
    }

    #[test]
    fn unknown_options_detected() {
        let p = parse(&["analyze", "--typo", "3"]).unwrap();
        assert!(p.expect_only(&["loop", "n"]).is_err());
        assert!(p.expect_only(&["typo"]).is_ok());
    }

    #[test]
    fn trailing_switch_then_option() {
        let p = parse(&["simulate", "--quick", "--n", "8"]).unwrap();
        assert!(p.has("quick"));
        assert_eq!(p.get_u64("n", 0).unwrap(), 8);
    }
}

//! Survivor-quorum membership and fail-stop-tolerant barrier episodes.
//!
//! The simulator's rescue rung (see `datasync-sim`'s recovery ladder)
//! models a machine that survives a fail-stopped processor by
//! reconfiguring to the survivor quorum. This module is the real-thread
//! counterpart: a [`Quorum`] tracks which processors are still live, and
//! a [`QuorumBarrier`] completes episodes over the *live* members only —
//! a retirement mid-episode releases waiters that would otherwise spin
//! on a dead participant forever.
//!
//! The hot path (the per-episode spin) stays lock-free exactly as the
//! paper's busy-wait argument requires: waiters spin on one monotone
//! episode counter. Only arrival/retirement *bookkeeping* — a
//! once-per-episode event, not a per-spin one — takes a mutex, which is
//! what makes a concurrent retirement race-free against the last
//! arrival.
//!
//! For the fixed-topology barriers ([`crate::ButterflyBarrier`],
//! [`crate::DisseminationBarrier`]) and the counter pools
//! ([`crate::ScPool`], [`crate::PcPool`]), reconfiguration is instead a
//! *stand-in* operation: a rescue controller arrives or advances on
//! behalf of the dead processor (`arrive_for`, `advance_for`,
//! `release_for`) after re-running its work on a survivor.

use crate::pad::CachePadded;
use crate::wait::WaitStrategy;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Live-membership mask for up to `p` processors.
///
/// Retirement is one-way (fail-stop is permanent) and the quorum never
/// empties: the last live member cannot be retired.
#[derive(Debug)]
pub struct Quorum {
    words: Box<[AtomicU64]>,
    p: usize,
    /// Guarded by the same lock callers use for episode bookkeeping in
    /// [`QuorumBarrier`]; standalone uses update it under `lock`.
    lock: Mutex<usize>,
}

impl Quorum {
    /// A quorum of `p` live processors.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn new(p: usize) -> Self {
        assert!(p >= 1, "a quorum needs at least one processor");
        let words = (0..p.div_ceil(64))
            .map(|w| {
                let bits = p - w * 64;
                AtomicU64::new(if bits >= 64 { u64::MAX } else { (1u64 << bits) - 1 })
            })
            .collect();
        Self { words, p, lock: Mutex::new(p) }
    }

    /// Configured processor count (live and retired).
    pub fn processors(&self) -> usize {
        self.p
    }

    /// Live member count.
    pub fn live(&self) -> usize {
        *self.lock.lock().unwrap()
    }

    /// `true` when `pid` has not been retired.
    pub fn is_live(&self, pid: usize) -> bool {
        assert!(pid < self.p, "pid {pid} out of range");
        self.words[pid / 64].load(Ordering::Acquire) & (1 << (pid % 64)) != 0
    }

    /// Retires `pid` from the quorum. Returns `true` on the live→dead
    /// transition, `false` if `pid` was already retired (idempotent).
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range or retiring it would empty the
    /// quorum — a machine with no survivors has nothing to reconfigure
    /// *to*, and the caller's run has simply failed.
    pub fn retire(&self, pid: usize) -> bool {
        assert!(pid < self.p, "pid {pid} out of range");
        let mut live = self.lock.lock().unwrap();
        let word = &self.words[pid / 64];
        let bit = 1u64 << (pid % 64);
        if word.load(Ordering::Acquire) & bit == 0 {
            return false;
        }
        assert!(*live > 1, "cannot retire the last live processor");
        word.fetch_and(!bit, Ordering::AcqRel);
        *live -= 1;
        true
    }
}

/// A reusable barrier over the live members of a [`Quorum`].
///
/// Behaves like a centralized sense-reversing barrier while all members
/// are live; [`QuorumBarrier::retire`] removes a fail-stopped member and
/// — if every *survivor* had already arrived — completes the episode on
/// its behalf, so survivors never wedge on a dead participant.
///
/// # Examples
///
/// ```
/// use datasync_core::quorum::QuorumBarrier;
///
/// let b = QuorumBarrier::new(2);
/// b.retire(1); // processor 1 fail-stopped before the episode
/// b.wait(0); // completes over the survivor quorum {0}
/// ```
#[derive(Debug)]
pub struct QuorumBarrier {
    quorum: Quorum,
    /// Arrivals in the current episode; guarded by `quorum.lock` so a
    /// retirement and the final arrival cannot race past each other.
    arrivals: Mutex<usize>,
    /// Completed-episode count; the lock-free spin target.
    sense: CachePadded<AtomicU64>,
    /// Per-processor completed-episode counts (each written only by its
    /// own thread).
    episodes: Box<[CachePadded<AtomicU64>]>,
    strategy: WaitStrategy,
}

impl QuorumBarrier {
    /// A barrier for `p` processors, all initially live.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn new(p: usize) -> Self {
        Self::with_strategy(p, WaitStrategy::default())
    }

    /// [`QuorumBarrier::new`] with an explicit wait strategy.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn with_strategy(p: usize, strategy: WaitStrategy) -> Self {
        Self {
            quorum: Quorum::new(p),
            arrivals: Mutex::new(0),
            sense: CachePadded::new(AtomicU64::new(0)),
            episodes: (0..p).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
            strategy,
        }
    }

    /// The underlying membership mask.
    pub fn quorum(&self) -> &Quorum {
        &self.quorum
    }

    /// Blocks until every *live* member has arrived.
    ///
    /// # Panics
    ///
    /// Panics if `pid` has been retired — a fail-stopped processor has
    /// no business arriving at a barrier.
    pub fn wait(&self, pid: usize) {
        assert!(self.quorum.is_live(pid), "retired processor {pid} cannot arrive");
        let episode = self.episodes[pid].load(Ordering::Relaxed) + 1;
        self.episodes[pid].store(episode, Ordering::Relaxed);
        let complete = {
            let live = self.quorum.lock.lock().unwrap();
            let mut arrivals = self.arrivals.lock().unwrap();
            *arrivals += 1;
            if *arrivals >= *live {
                *arrivals = 0;
                true
            } else {
                false
            }
        };
        if complete {
            self.sense.fetch_add(1, Ordering::AcqRel);
        } else {
            let sense = &*self.sense;
            self.strategy.wait_until(|| sense.load(Ordering::Acquire) >= episode);
        }
    }

    /// Retires a fail-stopped member and, if the survivors were all
    /// already waiting on it, completes the episode they were wedged in.
    /// Returns `true` on the live→dead transition (idempotent).
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range or is the last live member.
    pub fn retire(&self, pid: usize) -> bool {
        if !self.quorum.retire(pid) {
            return false;
        }
        let complete = {
            let live = self.quorum.lock.lock().unwrap();
            let mut arrivals = self.arrivals.lock().unwrap();
            if *arrivals > 0 && *arrivals >= *live {
                *arrivals = 0;
                true
            } else {
                false
            }
        };
        if complete {
            self.sense.fetch_add(1, Ordering::AcqRel);
        }
        true
    }

    /// Configured processor count (live and retired).
    pub fn processors(&self) -> usize {
        self.quorum.processors()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn quorum_tracks_membership() {
        let q = Quorum::new(70); // spans two mask words
        assert_eq!(q.processors(), 70);
        assert_eq!(q.live(), 70);
        assert!(q.is_live(0) && q.is_live(69));
        assert!(q.retire(69));
        assert!(!q.retire(69), "retirement is idempotent");
        assert!(!q.is_live(69));
        assert!(q.is_live(68));
        assert_eq!(q.live(), 69);
    }

    #[test]
    #[should_panic(expected = "last live processor")]
    fn quorum_never_empties() {
        let q = Quorum::new(2);
        q.retire(0);
        q.retire(1);
    }

    #[test]
    fn quorum_barrier_full_membership_episodes() {
        let b = QuorumBarrier::new(4);
        let slots: Vec<AtomicUsize> = (0..30).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for pid in 0..4 {
                let (b, slots) = (&b, &slots);
                s.spawn(move || {
                    for (e, slot) in slots.iter().enumerate() {
                        slot.fetch_add(1, Ordering::SeqCst);
                        b.wait(pid);
                        assert_eq!(slot.load(Ordering::SeqCst), 4, "episode {e} leaked");
                        b.wait(pid);
                    }
                });
            }
        });
    }

    #[test]
    fn quorum_barrier_runs_on_survivors_after_retirement() {
        // Processor 3 fail-stops before any episode; the survivor
        // quorum {0, 1, 2} must complete every episode without it.
        let b = QuorumBarrier::new(4);
        assert!(b.retire(3));
        let slots: Vec<AtomicUsize> = (0..20).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for pid in 0..3 {
                let (b, slots) = (&b, &slots);
                s.spawn(move || {
                    for (e, slot) in slots.iter().enumerate() {
                        slot.fetch_add(1, Ordering::SeqCst);
                        b.wait(pid);
                        assert_eq!(slot.load(Ordering::SeqCst), 3, "episode {e} leaked");
                        b.wait(pid);
                    }
                });
            }
        });
    }

    #[test]
    fn mid_episode_retirement_releases_wedged_survivors() {
        // The survivor arrives, the other member dies without arriving:
        // retire() must complete the episode on its behalf.
        let b = QuorumBarrier::new(2);
        std::thread::scope(|s| {
            let b = &b;
            s.spawn(move || b.wait(0));
            // Let the survivor publish its arrival, then retire the
            // dead member; the survivor must come back on its own.
            while *b.arrivals.lock().unwrap() == 0 {
                std::hint::spin_loop();
            }
            assert!(b.retire(1));
        });
        // The quorum is now {0}: further episodes are immediate.
        b.wait(0);
    }

    #[test]
    #[should_panic(expected = "cannot arrive")]
    fn retired_member_cannot_arrive() {
        let b = QuorumBarrier::new(2);
        b.retire(1);
        b.wait(1);
    }
}

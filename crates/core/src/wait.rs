//! Busy-wait strategies.
//!
//! The paper argues (Section 6) that for medium-grain parallelism,
//! busy-waiting beats context switching. On real threads pure spinning is
//! right when threads ≤ cores; the yielding variants keep the library
//! usable on oversubscribed machines (and in tests on small CI boxes).

use std::hint;
use std::thread;

/// How a primitive busy-waits for a condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitStrategy {
    /// Pure spin with a CPU relax hint. Lowest latency; use when threads
    /// do not exceed cores.
    Spin,
    /// Spin `spins` times, then `yield_now` between further checks.
    SpinThenYield {
        /// Number of spin iterations before yielding begins.
        spins: u32,
    },
    /// Exponential backoff from spinning to yielding.
    Backoff,
}

impl Default for WaitStrategy {
    /// [`WaitStrategy::SpinThenYield`] with 256 spins — safe on
    /// oversubscribed machines, near-spin latency otherwise.
    fn default() -> Self {
        WaitStrategy::SpinThenYield { spins: 256 }
    }
}

impl WaitStrategy {
    /// Busy-waits until `cond` returns `true` or `timeout` elapses.
    ///
    /// Returns `true` if the condition held before the deadline. The
    /// deadline is checked between condition probes, so the same pacing
    /// (spin / yield / backoff) applies as in [`WaitStrategy::wait_until`];
    /// an already-true condition never consults the clock.
    pub fn wait_until_timeout(self, cond: impl Fn() -> bool, timeout: std::time::Duration) -> bool {
        if cond() {
            return true;
        }
        let deadline = std::time::Instant::now() + timeout;
        match self {
            WaitStrategy::Spin => loop {
                if cond() {
                    return true;
                }
                if std::time::Instant::now() >= deadline {
                    return false;
                }
                hint::spin_loop();
            },
            WaitStrategy::SpinThenYield { spins } => {
                let mut n = 0u32;
                loop {
                    if cond() {
                        return true;
                    }
                    if std::time::Instant::now() >= deadline {
                        return false;
                    }
                    if n < spins {
                        hint::spin_loop();
                        n += 1;
                    } else {
                        thread::yield_now();
                    }
                }
            }
            WaitStrategy::Backoff => {
                let mut shift = 0u32;
                loop {
                    if cond() {
                        return true;
                    }
                    if std::time::Instant::now() >= deadline {
                        return false;
                    }
                    if shift < 10 {
                        for _ in 0..(1u32 << shift) {
                            hint::spin_loop();
                        }
                        shift += 1;
                    } else {
                        thread::yield_now();
                    }
                }
            }
        }
    }

    /// Busy-waits until `cond` returns `true`.
    pub fn wait_until(self, cond: impl Fn() -> bool) {
        match self {
            WaitStrategy::Spin => {
                while !cond() {
                    hint::spin_loop();
                }
            }
            WaitStrategy::SpinThenYield { spins } => {
                let mut n = 0u32;
                while !cond() {
                    if n < spins {
                        hint::spin_loop();
                        n += 1;
                    } else {
                        thread::yield_now();
                    }
                }
            }
            WaitStrategy::Backoff => {
                let mut shift = 0u32;
                while !cond() {
                    if shift < 10 {
                        for _ in 0..(1u32 << shift) {
                            hint::spin_loop();
                        }
                        shift += 1;
                    } else {
                        thread::yield_now();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn already_true_returns_immediately() {
        for s in [WaitStrategy::Spin, WaitStrategy::default(), WaitStrategy::Backoff] {
            s.wait_until(|| true);
        }
    }

    #[test]
    fn waits_for_condition() {
        for s in
            [WaitStrategy::Spin, WaitStrategy::SpinThenYield { spins: 4 }, WaitStrategy::Backoff]
        {
            let flag = Arc::new(AtomicBool::new(false));
            let f2 = Arc::clone(&flag);
            let t = std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                f2.store(true, Ordering::Release);
            });
            s.wait_until(|| flag.load(Ordering::Acquire));
            t.join().unwrap();
            assert!(flag.load(Ordering::Acquire));
        }
    }

    #[test]
    fn condition_checked_multiple_times() {
        let n = AtomicU32::new(0);
        WaitStrategy::Spin.wait_until(|| n.fetch_add(1, Ordering::Relaxed) >= 10);
        assert!(n.load(Ordering::Relaxed) >= 10);
    }

    #[test]
    fn timeout_expires_on_never_true_condition() {
        for s in
            [WaitStrategy::Spin, WaitStrategy::SpinThenYield { spins: 4 }, WaitStrategy::Backoff]
        {
            let t0 = std::time::Instant::now();
            let ok = s.wait_until_timeout(|| false, std::time::Duration::from_millis(5));
            assert!(!ok, "{s:?}: a never-true condition must time out");
            assert!(t0.elapsed() >= std::time::Duration::from_millis(5));
        }
    }

    #[test]
    fn timeout_returns_immediately_when_already_true() {
        for s in [WaitStrategy::Spin, WaitStrategy::default(), WaitStrategy::Backoff] {
            assert!(s.wait_until_timeout(|| true, std::time::Duration::ZERO));
        }
    }

    #[test]
    fn timeout_observes_late_satisfaction() {
        for s in
            [WaitStrategy::Spin, WaitStrategy::SpinThenYield { spins: 4 }, WaitStrategy::Backoff]
        {
            let flag = Arc::new(AtomicBool::new(false));
            let f2 = Arc::clone(&flag);
            let t = std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                f2.store(true, Ordering::Release);
            });
            let ok = s.wait_until_timeout(
                || flag.load(Ordering::Acquire),
                std::time::Duration::from_secs(60),
            );
            assert!(ok, "{s:?}: condition satisfied well before the deadline");
            t.join().unwrap();
        }
    }
}

//! Busy-wait strategies.
//!
//! The paper argues (Section 6) that for medium-grain parallelism,
//! busy-waiting beats context switching. On real threads pure spinning is
//! right when threads ≤ cores; the yielding variants keep the library
//! usable on oversubscribed machines (and in tests on small CI boxes).

use std::hint;
use std::thread;

/// How a primitive busy-waits for a condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitStrategy {
    /// Pure spin with a CPU relax hint. Lowest latency; use when threads
    /// do not exceed cores.
    Spin,
    /// Spin `spins` times, then `yield_now` between further checks.
    SpinThenYield {
        /// Number of spin iterations before yielding begins.
        spins: u32,
    },
    /// Exponential backoff from spinning to yielding.
    Backoff,
    /// Bounded exponential backoff with deterministic per-thread jitter:
    /// spin bursts double up to `1 << max_shift` probes, each stretched
    /// by a splitmix64-derived offset so symmetric waiters desynchronize
    /// instead of re-colliding on the same probe cadence after every
    /// wakeup (the retransmission-storm fix, applied to spinning); past
    /// the bound, bursts stay at the cap with a yield between them. The
    /// jitter stream is a pure function of the thread's id, so a given
    /// thread's pacing is reproducible run to run.
    JitteredBackoff {
        /// log2 of the longest spin burst (bursts are capped at
        /// `1 << max_shift` probes before jitter).
        max_shift: u32,
    },
}

/// splitmix64 finalizer: advances `state` by the golden-ratio increment
/// and returns a well-mixed 64-bit value. Hand-rolled (the workspace is
/// dependency-free by policy) and identical to the simulator's fault
/// RNG, so backoff jitter and fault injection share one tested mixer.
fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seeds a jitter stream from the current thread's id, so distinct
/// threads back off on distinct (but individually reproducible) cadences.
fn jitter_seed() -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    thread::current().id().hash(&mut h);
    h.finish() | 1
}

/// One jittered burst length for the current backoff `shift`: the base
/// burst `1 << shift` stretched to anywhere in `[base/2, 3*base/2]`.
fn jittered_burst(state: &mut u64, shift: u32) -> u64 {
    let base = 1u64 << shift;
    (base / 2 + splitmix64_next(state) % (base + 1)).max(1)
}

impl Default for WaitStrategy {
    /// [`WaitStrategy::SpinThenYield`] with 256 spins — safe on
    /// oversubscribed machines, near-spin latency otherwise.
    fn default() -> Self {
        WaitStrategy::SpinThenYield { spins: 256 }
    }
}

impl WaitStrategy {
    /// Busy-waits until `cond` returns `true` or `timeout` elapses.
    ///
    /// Returns `true` if the condition held before the deadline. The
    /// deadline is checked between condition probes, so the same pacing
    /// (spin / yield / backoff) applies as in [`WaitStrategy::wait_until`];
    /// an already-true condition never consults the clock.
    pub fn wait_until_timeout(self, cond: impl Fn() -> bool, timeout: std::time::Duration) -> bool {
        if cond() {
            return true;
        }
        let deadline = std::time::Instant::now() + timeout;
        match self {
            WaitStrategy::Spin => loop {
                if cond() {
                    return true;
                }
                if std::time::Instant::now() >= deadline {
                    return false;
                }
                hint::spin_loop();
            },
            WaitStrategy::SpinThenYield { spins } => {
                let mut n = 0u32;
                loop {
                    if cond() {
                        return true;
                    }
                    if std::time::Instant::now() >= deadline {
                        return false;
                    }
                    if n < spins {
                        hint::spin_loop();
                        n += 1;
                    } else {
                        thread::yield_now();
                    }
                }
            }
            WaitStrategy::Backoff => {
                let mut shift = 0u32;
                loop {
                    if cond() {
                        return true;
                    }
                    if std::time::Instant::now() >= deadline {
                        return false;
                    }
                    if shift < 10 {
                        for _ in 0..(1u32 << shift) {
                            hint::spin_loop();
                        }
                        shift += 1;
                    } else {
                        thread::yield_now();
                    }
                }
            }
            WaitStrategy::JitteredBackoff { max_shift } => {
                let mut state = jitter_seed();
                let mut shift = 0u32;
                loop {
                    if cond() {
                        return true;
                    }
                    if std::time::Instant::now() >= deadline {
                        return false;
                    }
                    for _ in 0..jittered_burst(&mut state, shift) {
                        hint::spin_loop();
                    }
                    if shift < max_shift {
                        shift += 1;
                    } else {
                        thread::yield_now();
                    }
                }
            }
        }
    }

    /// Busy-waits until `cond` returns `true`.
    pub fn wait_until(self, cond: impl Fn() -> bool) {
        match self {
            WaitStrategy::Spin => {
                while !cond() {
                    hint::spin_loop();
                }
            }
            WaitStrategy::SpinThenYield { spins } => {
                let mut n = 0u32;
                while !cond() {
                    if n < spins {
                        hint::spin_loop();
                        n += 1;
                    } else {
                        thread::yield_now();
                    }
                }
            }
            WaitStrategy::Backoff => {
                let mut shift = 0u32;
                while !cond() {
                    if shift < 10 {
                        for _ in 0..(1u32 << shift) {
                            hint::spin_loop();
                        }
                        shift += 1;
                    } else {
                        thread::yield_now();
                    }
                }
            }
            WaitStrategy::JitteredBackoff { max_shift } => {
                let mut state = jitter_seed();
                let mut shift = 0u32;
                while !cond() {
                    for _ in 0..jittered_burst(&mut state, shift) {
                        hint::spin_loop();
                    }
                    if shift < max_shift {
                        shift += 1;
                    } else {
                        thread::yield_now();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
    use std::sync::Arc;

    const JITTERED: WaitStrategy = WaitStrategy::JitteredBackoff { max_shift: 6 };

    #[test]
    fn already_true_returns_immediately() {
        for s in [WaitStrategy::Spin, WaitStrategy::default(), WaitStrategy::Backoff, JITTERED] {
            s.wait_until(|| true);
        }
    }

    #[test]
    fn waits_for_condition() {
        for s in [
            WaitStrategy::Spin,
            WaitStrategy::SpinThenYield { spins: 4 },
            WaitStrategy::Backoff,
            JITTERED,
        ] {
            let flag = Arc::new(AtomicBool::new(false));
            let f2 = Arc::clone(&flag);
            let t = std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                f2.store(true, Ordering::Release);
            });
            s.wait_until(|| flag.load(Ordering::Acquire));
            t.join().unwrap();
            assert!(flag.load(Ordering::Acquire));
        }
    }

    #[test]
    fn condition_checked_multiple_times() {
        let n = AtomicU32::new(0);
        WaitStrategy::Spin.wait_until(|| n.fetch_add(1, Ordering::Relaxed) >= 10);
        assert!(n.load(Ordering::Relaxed) >= 10);
    }

    #[test]
    fn timeout_expires_on_never_true_condition() {
        for s in [
            WaitStrategy::Spin,
            WaitStrategy::SpinThenYield { spins: 4 },
            WaitStrategy::Backoff,
            JITTERED,
        ] {
            let t0 = std::time::Instant::now();
            let ok = s.wait_until_timeout(|| false, std::time::Duration::from_millis(5));
            assert!(!ok, "{s:?}: a never-true condition must time out");
            assert!(t0.elapsed() >= std::time::Duration::from_millis(5));
        }
    }

    #[test]
    fn timeout_returns_immediately_when_already_true() {
        for s in [WaitStrategy::Spin, WaitStrategy::default(), WaitStrategy::Backoff, JITTERED] {
            assert!(s.wait_until_timeout(|| true, std::time::Duration::ZERO));
        }
    }

    #[test]
    fn timeout_observes_late_satisfaction() {
        for s in [
            WaitStrategy::Spin,
            WaitStrategy::SpinThenYield { spins: 4 },
            WaitStrategy::Backoff,
            JITTERED,
        ] {
            let flag = Arc::new(AtomicBool::new(false));
            let f2 = Arc::clone(&flag);
            let t = std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                f2.store(true, Ordering::Release);
            });
            let ok = s.wait_until_timeout(
                || flag.load(Ordering::Acquire),
                std::time::Duration::from_secs(60),
            );
            assert!(ok, "{s:?}: condition satisfied well before the deadline");
            t.join().unwrap();
        }
    }

    #[test]
    fn jitter_stream_is_reproducible_and_bounded() {
        // Same seed → same burst sequence; every burst stays within the
        // documented [base/2, 3*base/2] envelope (and is never zero).
        let (mut a, mut b) = (41u64, 41u64);
        for shift in 0..12u32 {
            let x = jittered_burst(&mut a, shift);
            let y = jittered_burst(&mut b, shift);
            assert_eq!(x, y, "same state must give the same burst");
            let base = 1u64 << shift;
            assert!(x >= (base / 2).max(1) && x <= base + base / 2, "shift {shift}: burst {x}");
        }
        // Different seeds desynchronize almost surely.
        let (mut c, mut d) = (1u64, 2u64);
        let cs: Vec<u64> = (0..8).map(|s| jittered_burst(&mut c, s + 4)).collect();
        let ds: Vec<u64> = (0..8).map(|s| jittered_burst(&mut d, s + 4)).collect();
        assert_ne!(cs, ds, "distinct seeds should give distinct cadences");
    }
}

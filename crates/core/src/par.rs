//! A minimal scoped-thread parallel map (std only — the workspace is
//! deliberately dependency-free, so this is the in-tree stand-in for
//! rayon's `par_iter().map().collect()`).
//!
//! Work is handed out through one atomic index, results land in their
//! input slot, so the output order is **deterministic** — identical to
//! the serial `items.into_iter().map(f).collect()` — regardless of
//! thread count or scheduling. That property is what lets the bench
//! sweep runner and the robustness matrix parallelize without changing
//! a single byte of their output.
//!
//! Nested calls degrade to serial execution (a global in-flight counter)
//! so fan-out over tasks that themselves fan out cannot explode the
//! thread count. `DATASYNC_THREADS` caps or disables parallelism
//! (`DATASYNC_THREADS=1` forces serial — useful for baselines and
//! debugging). A request above the machine's available parallelism is
//! capped at it: the workers are pure CPU-bound simulation loops, so
//! oversubscription buys nothing and costs scheduler churn — on a
//! one-core host it made the "parallel" sweep measurably *slower* than
//! serial while still being reported as a multi-thread run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of [`par_map`] calls currently executing (nested calls run
/// serially instead of spawning threads-of-threads).
static IN_FLIGHT: AtomicUsize = AtomicUsize::new(0);

/// Parses a `DATASYNC_THREADS` value. Errors on anything that is not a
/// positive integer — including `0`, which used to be silently promoted
/// to 1 and made "parallelism off" indistinguishable from a typo.
///
/// # Errors
///
/// Returns a human-readable message naming the bad value.
pub fn threads_from_env(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(format!(
            "DATASYNC_THREADS={raw:?} is invalid: use 1 to force serial execution, \
             or unset the variable for auto-detection"
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "DATASYNC_THREADS={raw:?} is not a positive integer; \
             unset it or set a thread count like DATASYNC_THREADS=4"
        )),
    }
}

/// The machine's available hardware parallelism (always `>= 1`).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Caps a requested worker count at the hardware parallelism.
///
/// The workers are CPU-bound simulation loops; running more of them than
/// the machine has cores adds context-switch churn without adding
/// throughput. This is the pure core of [`default_threads`], split out so
/// the clamp is testable without mutating process environment.
#[must_use]
pub fn effective_threads(requested: usize, available: usize) -> usize {
    requested.min(available.max(1)).max(1)
}

/// The default worker count: `DATASYNC_THREADS` if set and valid (capped
/// at [`available_threads`]), else the available parallelism, else 1.
///
/// An invalid `DATASYNC_THREADS` (unparsable, or `0`) is **not**
/// silently ignored: a warning naming the bad value is printed to
/// stderr and auto-detection takes over, so a typo degrades loudly
/// instead of quietly running on the wrong thread count. A valid value
/// above the hardware parallelism is likewise clamped with a warning —
/// oversubscribed workers made a "4-thread" sweep on a one-core host
/// come out *slower* than serial while the report still claimed
/// `threads: 4`.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("DATASYNC_THREADS") {
        match threads_from_env(&v) {
            Ok(n) => {
                let avail = available_threads();
                let eff = effective_threads(n, avail);
                if eff < n {
                    // Once per process: every par_map re-reads the
                    // default, and a sweep would otherwise repeat the
                    // warning hundreds of times.
                    static WARNED: std::sync::Once = std::sync::Once::new();
                    WARNED.call_once(|| {
                        eprintln!(
                            "warning: DATASYNC_THREADS={n} exceeds the {avail} available \
                             hardware thread(s); capping at {eff}"
                        );
                    });
                }
                return eff;
            }
            Err(msg) => eprintln!("warning: {msg}; falling back to auto-detection"),
        }
    }
    available_threads()
}

/// Maps `f` over `items` on up to [`default_threads`] scoped threads;
/// results keep input order. See [`par_map_threads`].
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_threads(default_threads(), items, f)
}

/// Maps `f` over `items` on up to `threads` scoped threads, returning
/// results in input order (bit-identical to the serial map). Runs
/// serially when `threads <= 1`, when there is at most one item, or when
/// called from inside another `par_map` (nested-parallelism guard).
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins every worker first).
pub fn par_map_threads<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.min(n);
    if threads <= 1 || IN_FLIGHT.load(Ordering::Relaxed) > 0 {
        return items.into_iter().map(f).collect();
    }
    IN_FLIGHT.fetch_add(1, Ordering::Relaxed);
    // Each slot is locked exactly once by exactly one worker; the
    // mutexes only exist to hand owned items across the scope safely.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i].lock().expect("slot lock").take().expect("slot taken once");
                    let r = f(item);
                    *results[i].lock().expect("result lock") = Some(r);
                });
            }
        });
    }));
    IN_FLIGHT.fetch_sub(1, Ordering::Relaxed);
    if let Err(p) = run {
        std::panic::resume_unwind(p);
    }
    results
        .into_iter()
        .map(|m| m.into_inner().expect("result lock").expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_env_parsing_is_strict() {
        assert_eq!(threads_from_env("1"), Ok(1));
        assert_eq!(threads_from_env(" 8 "), Ok(8));
        let zero = threads_from_env("0").unwrap_err();
        assert!(zero.contains("DATASYNC_THREADS"), "{zero}");
        assert!(zero.contains("serial"), "{zero}");
        for bad in ["", "four", "2.5", "-1", "1 2"] {
            let e = threads_from_env(bad).unwrap_err();
            assert!(e.contains("positive integer"), "{bad:?}: {e}");
        }
    }

    #[test]
    fn effective_threads_clamps_oversubscription() {
        // Request within the hardware budget: honored as-is.
        assert_eq!(effective_threads(2, 8), 2);
        assert_eq!(effective_threads(8, 8), 8);
        // Request above it: capped (the one-core CI host bug — a
        // requested 4 ran as 4 oversubscribed workers and lost to the
        // serial baseline).
        assert_eq!(effective_threads(4, 1), 1);
        assert_eq!(effective_threads(64, 8), 8);
        // Degenerate inputs never yield zero workers.
        assert_eq!(effective_threads(1, 0), 1);
        assert_eq!(effective_threads(0, 4), 1);
        // And default_threads always lands inside the hardware budget.
        assert!(default_threads() >= 1);
        assert!(default_threads() <= available_threads());
    }

    #[test]
    fn preserves_order_and_results() {
        let items: Vec<u64> = (0..100).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 4, 7] {
            let got = par_map_threads(threads, items.clone(), |x| x * x + 1);
            assert_eq!(got, serial, "threads = {threads}");
        }
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map_threads(4, Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map_threads(4, vec![9], |x: u32| x + 1), vec![10]);
    }

    #[test]
    fn nested_calls_run_serially() {
        let outer = par_map_threads(2, vec![1u64, 2, 3, 4], |x| {
            let inner = par_map_threads(2, vec![10u64, 20], move |y| y + x);
            inner.iter().sum::<u64>()
        });
        assert_eq!(outer, vec![32, 34, 36, 38]);
    }

    #[test]
    fn moves_non_clone_items() {
        let items: Vec<Box<u64>> = (0..16).map(Box::new).collect();
        let got = par_map_threads(3, items, |b| *b * 2);
        assert_eq!(got, (0..16).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            par_map_threads(2, vec![0u32, 1, 2, 3], |x| {
                assert_ne!(x, 2, "boom");
                x
            })
        });
        assert!(r.is_err());
        // The guard must be released despite the panic.
        assert_eq!(IN_FLIGHT.load(Ordering::Relaxed), 0);
        assert_eq!(par_map_threads(2, vec![1u32, 2], |x| x), vec![1, 2]);
    }
}

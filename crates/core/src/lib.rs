//! The process-oriented data-synchronization scheme of Su & Yew
//! (*On Data Synchronization for Multiprocessors*, ISCA 1989) for real
//! threads.
//!
//! The paper's contribution is a synchronization scheme for Doacross
//! loops that uses one **process counter** (PC) per iteration — folded
//! onto a small pool of `X` physical counters — instead of one key per
//! datum or one counter per statement:
//!
//! * [`pc`] — [`pc::PcPool`] and the basic primitives of Fig 4.2.a
//!   (`set_PC`, `release_PC`, `wait_PC`, `get_PC`);
//! * [`handle`] — the improved primitives of Fig 4.3
//!   (`load_index`, `mark_PC`, `transfer_PC`);
//! * [`doacross`] — a self-scheduled Doacross executor
//!   ([`doacross::Doacross`]);
//! * [`planexec`] — running compiler-generated
//!   [`datasync_loopir::plan::SyncPlan`]s, plus the oracle-checked
//!   parallel interpreter [`planexec::run_nest`];
//! * [`barrier`] — the butterfly barrier of Example 4 and baselines;
//! * [`phased`] — Example 5's phase-structured execution with pairwise
//!   synchronization;
//! * [`wait`] — busy-wait strategies (Section 6 argues for busy-waiting
//!   at this granularity);
//! * [`quorum`] — survivor-quorum membership and a fail-stop-tolerant
//!   barrier, the real-thread counterpart of the simulator's
//!   reconfiguration rung;
//! * [`sc`] and [`keys`] — the statement-oriented and reference-based
//!   schemes on real threads, for taxonomy-complete comparisons;
//! * [`par`] — a std-only scoped-thread parallel map with deterministic
//!   result ordering, used by the experiment sweep runners.
//!
//! # Examples
//!
//! A Doacross loop with a distance-1 flow dependence:
//!
//! ```
//! use datasync_core::doacross::Doacross;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let n = 100usize;
//! let acc: Vec<AtomicU64> = (0..n + 1).map(|_| AtomicU64::new(0)).collect();
//! Doacross::new(n as u64).threads(4).pcs(8).run(|i, ctx| {
//!     ctx.wait(1, 1);
//!     let prev = acc[i as usize].load(Ordering::Acquire);
//!     acc[i as usize + 1].store(prev + i + 1, Ordering::Release);
//!     ctx.mark(1);
//! });
//! // acc[n] = sum of 1..=n
//! assert_eq!(acc[n].load(Ordering::Relaxed), (n as u64) * (n as u64 + 1) / 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod barrier;
pub mod doacross;
pub mod handle;
pub mod keys;
pub mod pad;
pub mod par;
pub mod pc;
pub mod phased;
pub mod planexec;
pub mod quorum;
pub mod sc;
pub mod wait;

pub use barrier::{ButterflyBarrier, CounterBarrier, DisseminationBarrier, PhaseBarrier};
pub use doacross::{Doacross, Primitives, ProcessCtx};
pub use handle::ProcessHandle;
pub use keys::KeyTable;
pub use pad::CachePadded;
pub use par::{par_map, par_map_threads};
pub use pc::{PcPool, PcValue};
pub use phased::{PhaseSync, Phased};
pub use planexec::{run_nest, run_plan, SharedArrayStore};
pub use quorum::{Quorum, QuorumBarrier};
pub use sc::ScPool;
pub use wait::WaitStrategy;

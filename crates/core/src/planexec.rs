//! Executing compiled loops ([`SyncPlan`]s) on real threads.
//!
//! This module closes the loop between the compiler substrate
//! (`datasync-loopir`) and the runtime: [`run_plan`] drives arbitrary
//! user statement bodies through a placement, and [`run_nest`] executes a
//! whole [`LoopNest`] under the abstract order-sensitive semantics so the
//! result can be compared bit-for-bit against the sequential oracle —
//! the strongest possible correctness check for the process-oriented
//! scheme on real hardware.

use crate::doacross::{Doacross, ProcessCtx};
use datasync_loopir::exec::ArrayStore;
use datasync_loopir::ir::{ArrayId, LoopNest, StmtId};
use datasync_loopir::plan::{IterOp, PcOp, SyncPlan};
use datasync_loopir::space::IterSpace;
use std::collections::HashMap;
use std::sync::Mutex;

/// Runs a planned Doacross loop, invoking `body(stmt, pid)` for every
/// statement instance the plan schedules.
///
/// Waits, marks and transfers are taken verbatim from the plan, so any
/// executor disagreement with the simulator would surface as a
/// correctness failure in the cross-checking tests.
///
/// # Panics
///
/// Panics if `plan` was built for a different nest.
pub fn run_plan<F>(exec: &Doacross, nest: &LoopNest, plan: &SyncPlan, body: F)
where
    F: Fn(StmtId, u64) + Sync,
{
    assert_eq!(plan.n_stmts(), nest.n_stmts(), "plan does not match nest");
    exec.run(|pid, ctx| {
        run_iteration(nest, plan, pid, ctx, &body);
    });
}

/// Executes the ops of one iteration against a context.
fn run_iteration<F>(nest: &LoopNest, plan: &SyncPlan, pid: u64, ctx: &mut ProcessCtx<'_>, body: F)
where
    F: Fn(StmtId, u64),
{
    for op in plan.iteration_ops(nest, pid) {
        match op {
            IterOp::Wait(w) => ctx.wait(w.dist as u64, w.step),
            IterOp::Exec(s) => body(s, pid),
            IterOp::Pc(PcOp::Mark(step)) => ctx.mark(step),
            IterOp::Pc(PcOp::Transfer) => ctx.transfer(),
        }
    }
}

/// One shard of [`SharedArrayStore`]: `(array, element)` → value.
type Shard = Mutex<HashMap<(ArrayId, Vec<i64>), u64>>;

/// A sharded concurrent array store with the same read/write semantics as
/// [`ArrayStore`]. Reads of unwritten elements return the deterministic
/// init value; correct synchronization (not the store's locks) is what
/// makes each read see the right write.
#[derive(Debug)]
pub struct SharedArrayStore {
    shards: Vec<Shard>,
}

impl SharedArrayStore {
    /// Creates a store with a fixed shard count.
    pub fn new() -> Self {
        Self { shards: (0..64).map(|_| Mutex::new(HashMap::new())).collect() }
    }

    fn shard(&self, array: ArrayId, element: &[i64]) -> &Shard {
        let mut h = datasync_loopir::exec::mix2(array.0 as u64, element.len() as u64);
        for &e in element {
            h = datasync_loopir::exec::mix2(h, e as u64);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Reads an element (init value if never written).
    pub fn read(&self, array: ArrayId, element: &[i64]) -> u64 {
        let guard = self.shard(array, element).lock().expect("store lock poisoned");
        match guard.get(&(array, element.to_vec())) {
            Some(&v) => v,
            None => datasync_loopir::exec::init_value(array, element),
        }
    }

    /// Writes an element.
    pub fn write(&self, array: ArrayId, element: Vec<i64>, value: u64) {
        let mut guard = self.shard(array, &element).lock().expect("store lock poisoned");
        guard.insert((array, element), value);
    }

    /// Collapses into a plain [`ArrayStore`] for comparison.
    pub fn into_store(self) -> ArrayStore {
        let mut out = ArrayStore::new();
        for shard in self.shards {
            for ((array, element), value) in shard.into_inner().expect("store lock poisoned") {
                out.write(array, element, value);
            }
        }
        out
    }
}

impl Default for SharedArrayStore {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs a whole nest in parallel under the abstract semantics and returns
/// the resulting store.
///
/// The result must equal [`datasync_loopir::exec::run_sequential`] —
/// the abstract semantics is order-sensitive, so equality proves every
/// dependence was respected.
///
/// # Examples
///
/// ```
/// use datasync_core::{doacross::Doacross, planexec::run_nest};
/// use datasync_loopir::{analysis, covering, exec::run_sequential,
///                       plan::SyncPlan, space::IterSpace, workpatterns::fig21_loop};
///
/// let nest = fig21_loop(64);
/// let space = IterSpace::of(&nest);
/// let graph = covering::reduce(&nest, &analysis::analyze(&nest)).linearized(&space);
/// let plan = SyncPlan::build(&nest, &graph);
/// let exec = Doacross::new(space.count()).threads(4).pcs(8);
/// let parallel = run_nest(&exec, &nest, &plan);
/// assert_eq!(parallel.fingerprint(), run_sequential(&nest).fingerprint());
/// ```
pub fn run_nest(exec: &Doacross, nest: &LoopNest, plan: &SyncPlan) -> ArrayStore {
    assert_eq!(plan.n_stmts(), nest.n_stmts(), "plan does not match nest");
    let space = IterSpace::of(nest);
    let store = SharedArrayStore::new();
    exec.run(|pid, ctx| {
        let indices = space.indices(pid);
        for op in plan.iteration_ops(nest, pid) {
            match op {
                IterOp::Wait(w) => ctx.wait(w.dist as u64, w.step),
                IterOp::Exec(s) => {
                    // Mirror of `execute_stmt` against the shared store.
                    let stmt = nest.stmt(s);
                    let reads: Vec<u64> =
                        stmt.reads().map(|r| store.read(r.array, &r.element(&indices))).collect();
                    let v = datasync_loopir::exec::stmt_value(stmt, &indices, &reads);
                    for w in stmt.writes() {
                        store.write(w.array, w.element(&indices), v);
                    }
                }
                IterOp::Pc(PcOp::Mark(step)) => ctx.mark(step),
                IterOp::Pc(PcOp::Transfer) => ctx.transfer(),
            }
        }
    });
    store.into_store()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasync_loopir::exec::run_sequential;
    use datasync_loopir::workpatterns::{example2_nested, example3_branches, fig21_loop};
    use datasync_loopir::{analysis, covering};

    fn plan_of(nest: &LoopNest) -> SyncPlan {
        let space = IterSpace::of(nest);
        let graph = covering::reduce(nest, &analysis::analyze(nest)).linearized(&space);
        SyncPlan::build(nest, &graph)
    }

    fn check_matches_sequential(nest: &LoopNest, threads: usize, pcs: usize) {
        let plan = plan_of(nest);
        let exec = Doacross::new(nest.iter_count()).threads(threads).pcs(pcs);
        let parallel = run_nest(&exec, nest, &plan);
        let sequential = run_sequential(nest);
        assert_eq!(parallel, sequential, "parallel execution diverged from sequential oracle");
    }

    #[test]
    fn fig21_matches_sequential() {
        check_matches_sequential(&fig21_loop(200), 4, 8);
    }

    #[test]
    fn fig21_small_pool_matches_sequential() {
        // X = 2 forces heavy folding; still correct.
        check_matches_sequential(&fig21_loop(150), 4, 2);
    }

    #[test]
    fn example2_nested_matches_sequential() {
        check_matches_sequential(&example2_nested(12, 9, 2), 4, 8);
    }

    #[test]
    fn depth3_matches_sequential() {
        check_matches_sequential(&datasync_loopir::workpatterns::depth3_nest(3, 4, 5, 1), 4, 8);
    }

    #[test]
    fn example3_branches_match_sequential() {
        check_matches_sequential(&example3_branches(180, 2), 4, 8);
    }

    #[test]
    fn run_plan_visits_every_instance() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let nest = fig21_loop(60);
        let plan = plan_of(&nest);
        let count = AtomicUsize::new(0);
        let exec = Doacross::new(60).threads(3).pcs(4);
        run_plan(&exec, &nest, &plan, |_stmt, _pid| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 60 * 5);
    }

    #[test]
    fn shared_store_roundtrip() {
        let s = SharedArrayStore::new();
        let a = ArrayId(1);
        assert_eq!(s.read(a, &[3]), datasync_loopir::exec::init_value(a, &[3]));
        s.write(a, vec![3], 99);
        assert_eq!(s.read(a, &[3]), 99);
        let plain = s.into_store();
        assert_eq!(plain.read(a, &[3]), 99);
        assert_eq!(plain.written_len(), 1);
    }
}

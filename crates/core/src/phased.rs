//! Phase-structured computation with local communication (Example 5).
//!
//! The paper's FFT example: partition the data into one chunk per
//! processor; in each stage a processor exchanges data with exactly one
//! partner (`pid xor 2^stage`). A global barrier per stage over-
//! synchronizes; the process-oriented scheme lets each processor wait
//! only for its partner — `mark_PC(i)` then
//! `while (PC[pid xor 2^i].step < i)`.
//!
//! [`Phased`] runs `phases` rounds of a user computation under either
//! policy so the two can be compared on identical work.

use crate::barrier::{ButterflyBarrier, CounterBarrier, DisseminationBarrier, PhaseBarrier};
use crate::pad::CachePadded;
use crate::wait::WaitStrategy;
use std::sync::atomic::{AtomicU64, Ordering};

/// Synchronization policy between phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseSync {
    /// Global centralized counter barrier after every phase (the paper's
    /// `\[7\]` baseline).
    GlobalCounter,
    /// Global butterfly barrier after every phase.
    GlobalButterfly,
    /// Global dissemination barrier after every phase.
    GlobalDissemination,
    /// Pairwise: after phase `i`, wait only for partner
    /// `pid xor 2^(i mod log2 P)` (Example 5). Requires the phase-`i+1`
    /// computation at `pid` to read only data produced by `pid` and that
    /// partner — the butterfly communication pattern of FFT.
    Pairwise,
}

impl PhaseSync {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PhaseSync::GlobalCounter => "global-counter",
            PhaseSync::GlobalButterfly => "global-butterfly",
            PhaseSync::GlobalDissemination => "global-dissemination",
            PhaseSync::Pairwise => "pairwise",
        }
    }
}

/// Executor for phase-structured computations.
///
/// # Examples
///
/// ```
/// use datasync_core::phased::{Phased, PhaseSync};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let p = 4;
/// let stages = 2; // log2(4)
/// let hits: Vec<AtomicU64> = (0..p).map(|_| AtomicU64::new(0)).collect();
/// Phased::new(p, stages).sync(PhaseSync::Pairwise).run(|pid, _phase| {
///     hits[pid].fetch_add(1, Ordering::Relaxed);
/// });
/// assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == stages as u64));
/// ```
#[derive(Debug, Clone)]
pub struct Phased {
    workers: usize,
    phases: usize,
    sync: PhaseSync,
    strategy: WaitStrategy,
}

impl Phased {
    /// `workers` processors running `phases` phases.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize, phases: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        Self { workers, phases, sync: PhaseSync::Pairwise, strategy: WaitStrategy::default() }
    }

    /// Chooses the synchronization policy.
    pub fn sync(mut self, sync: PhaseSync) -> Self {
        self.sync = sync;
        self
    }

    /// Busy-wait strategy.
    pub fn wait_strategy(mut self, s: WaitStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Runs `compute(pid, phase)` for every worker and phase, with the
    /// configured synchronization between phases.
    ///
    /// # Panics
    ///
    /// Panics if the policy is [`PhaseSync::Pairwise`] or
    /// [`PhaseSync::GlobalButterfly`] and `workers` is not a power of two.
    pub fn run<F>(&self, compute: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        match self.sync {
            PhaseSync::GlobalCounter => {
                let b = CounterBarrier::with_strategy(self.workers, self.strategy);
                self.run_with_barrier(&b, &compute);
            }
            PhaseSync::GlobalButterfly => {
                let b = ButterflyBarrier::with_strategy(self.workers, self.strategy);
                self.run_with_barrier(&b, &compute);
            }
            PhaseSync::GlobalDissemination => {
                let b = DisseminationBarrier::with_strategy(self.workers, self.strategy);
                self.run_with_barrier(&b, &compute);
            }
            PhaseSync::Pairwise => self.run_pairwise(&compute),
        }
    }

    fn run_with_barrier<F>(&self, barrier: &dyn PhaseBarrier, compute: &F)
    where
        F: Fn(usize, usize) + Sync,
    {
        std::thread::scope(|s| {
            for pid in 0..self.workers {
                s.spawn(move || {
                    for phase in 0..self.phases {
                        compute(pid, phase);
                        barrier.wait(pid);
                    }
                });
            }
        });
    }

    fn run_pairwise<F>(&self, compute: &F)
    where
        F: Fn(usize, usize) + Sync,
    {
        assert!(
            self.workers.is_power_of_two(),
            "pairwise phase sync needs a power-of-two worker count"
        );
        let log_p = self.workers.trailing_zeros() as usize;
        let counters: Vec<CachePadded<AtomicU64>> =
            (0..self.workers).map(|_| CachePadded::new(AtomicU64::new(0))).collect();
        let counters = &counters;
        std::thread::scope(|s| {
            for pid in 0..self.workers {
                s.spawn(move || {
                    for phase in 0..self.phases {
                        compute(pid, phase);
                        let step = phase as u64 + 1;
                        // mark_PC(i)
                        counters[pid].store(step, Ordering::Release);
                        if log_p > 0 {
                            // while (PC[pid xor 2^i].step < i)
                            let partner = pid ^ (1usize << (phase % log_p));
                            let cell = &counters[partner];
                            self.strategy.wait_until(|| cell.load(Ordering::Acquire) >= step);
                        }
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn count_phases(sync: PhaseSync, workers: usize, phases: usize) {
        let per_phase: Vec<AtomicUsize> = (0..phases).map(|_| AtomicUsize::new(0)).collect();
        Phased::new(workers, phases).sync(sync).run(|_pid, phase| {
            per_phase[phase].fetch_add(1, Ordering::SeqCst);
        });
        for (i, c) in per_phase.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), workers, "phase {i} under {}", sync.name());
        }
    }

    #[test]
    fn all_policies_run_all_phases() {
        for sync in [
            PhaseSync::GlobalCounter,
            PhaseSync::GlobalButterfly,
            PhaseSync::GlobalDissemination,
            PhaseSync::Pairwise,
        ] {
            count_phases(sync, 4, 6);
        }
    }

    #[test]
    fn global_barrier_orders_phases_strictly() {
        // With a global barrier, no worker may start phase k+1 before all
        // finished phase k.
        let in_phase = AtomicUsize::new(0);
        Phased::new(4, 5).sync(PhaseSync::GlobalDissemination).run(|_pid, phase| {
            let seen = in_phase.load(Ordering::SeqCst);
            assert!(seen >= phase * 4 && seen < (phase + 1) * 4);
            in_phase.fetch_add(1, Ordering::SeqCst);
        });
    }

    #[test]
    fn pairwise_orders_partner_data() {
        // Worker pid writes slot[pid] at each phase; at phase k+1 it reads
        // the partner slot written in phase k — pairwise sync must make
        // that read safe. We assert the partner's phase counter is high
        // enough when read.
        let p = 8;
        let phases = 6;
        let slots: Vec<AtomicUsize> = (0..p).map(|_| AtomicUsize::new(0)).collect();
        let log_p = 3;
        Phased::new(p, phases).sync(PhaseSync::Pairwise).run(|pid, phase| {
            if phase > 0 {
                let prev_partner = pid ^ (1usize << ((phase - 1) % log_p));
                let v = slots[prev_partner].load(Ordering::SeqCst);
                assert!(v >= phase, "partner {prev_partner} behind at phase {phase}: {v}");
            }
            slots[pid].store(phase + 1, Ordering::SeqCst);
        });
    }

    #[test]
    fn non_power_of_two_works_for_global() {
        count_phases(PhaseSync::GlobalCounter, 5, 4);
        count_phases(PhaseSync::GlobalDissemination, 5, 4);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn pairwise_rejects_non_power_of_two() {
        Phased::new(6, 2).sync(PhaseSync::Pairwise).run(|_, _| {});
    }

    #[test]
    fn single_worker_trivial() {
        count_phases(PhaseSync::Pairwise, 1, 3);
    }
}

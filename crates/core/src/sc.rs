//! Statement counters — the statement-oriented scheme (Section 3.2) on
//! real threads, Alliant `Advance`/`Await` semantics.
//!
//! One counter per source statement, shared "horizontally" by all
//! iterations: after iteration `i` completes source `Sa` it waits for
//! `SC[a] == i-1` and sets it to `i`, so iteration `i`'s update cannot
//! happen before every earlier iteration's — the serialization the
//! paper's Section 4 criticizes (and which [`crate::pc::PcPool`]'s
//! "vertical" sharing avoids). Counters store `last_advanced + 1`
//! (initially 0) so 0-based iteration ids need no signed values.

use crate::pad::CachePadded;
use crate::wait::WaitStrategy;
use std::sync::atomic::{AtomicU64, Ordering};

/// A pool of statement counters.
///
/// # Examples
///
/// ```
/// use datasync_core::sc::ScPool;
///
/// let scs = ScPool::new(2); // two source statements
/// // Iteration 0 completes source 0 and advances it.
/// scs.advance(0, 0);
/// // Iteration 1 may await source 0 of iteration 0 (distance 1)...
/// scs.await_sc(0, 1, 1);
/// // ...and then advance its own instance.
/// scs.advance(0, 1);
/// ```
#[derive(Debug)]
pub struct ScPool {
    scs: Box<[CachePadded<AtomicU64>]>,
    strategy: WaitStrategy,
}

impl ScPool {
    /// Creates `n` counters, all at "no iteration has advanced yet".
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        Self::with_strategy(n, WaitStrategy::default())
    }

    /// [`ScPool::new`] with an explicit wait strategy.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_strategy(n: usize, strategy: WaitStrategy) -> Self {
        assert!(n > 0, "a pool needs at least one statement counter");
        Self { scs: (0..n).map(|_| CachePadded::new(AtomicU64::new(0))).collect(), strategy }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.scs.len()
    }

    /// `true` if the pool is empty (never — kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.scs.is_empty()
    }

    /// `Advance(sc)` for iteration `pid`: waits until every earlier
    /// iteration advanced this counter, then records this one.
    pub fn advance(&self, sc: usize, pid: u64) {
        let cell = &*self.scs[sc];
        self.strategy.wait_until(|| cell.load(Ordering::Acquire) == pid);
        cell.store(pid + 1, Ordering::Release);
    }

    /// `Await(d, sc)` for iteration `pid`: waits until iteration
    /// `pid - dist` advanced the counter; no-op at the loop boundary.
    pub fn await_sc(&self, sc: usize, pid: u64, dist: u64) {
        if dist > pid {
            return;
        }
        let threshold = pid - dist + 1;
        let cell = &*self.scs[sc];
        self.strategy.wait_until(|| cell.load(Ordering::Acquire) >= threshold);
    }

    /// Non-blocking probe of [`ScPool::advance`]: records iteration
    /// `pid`'s advance if every earlier iteration has already advanced,
    /// returning `false` (without waiting) otherwise.
    pub fn try_advance(&self, sc: usize, pid: u64) -> bool {
        let cell = &*self.scs[sc];
        if cell.load(Ordering::Acquire) != pid {
            return false;
        }
        cell.store(pid + 1, Ordering::Release);
        true
    }

    /// Non-blocking probe of [`ScPool::await_sc`]: `true` when the wait
    /// would return immediately.
    pub fn try_await_sc(&self, sc: usize, pid: u64, dist: u64) -> bool {
        if dist > pid {
            return true;
        }
        self.scs[sc].load(Ordering::Acquire) > pid - dist
    }

    /// [`ScPool::advance`] with a deadline. Returns `true` once the
    /// advance is recorded; a `false` means some earlier iteration never
    /// advanced this counter within `timeout` — the library-user
    /// equivalent of the simulator's deadlock detector.
    pub fn advance_timeout(&self, sc: usize, pid: u64, timeout: std::time::Duration) -> bool {
        let cell = &*self.scs[sc];
        if !self
            .strategy
            .wait_until_timeout(|| cell.load(Ordering::Acquire) == pid, timeout)
        {
            return false;
        }
        cell.store(pid + 1, Ordering::Release);
        true
    }

    /// [`ScPool::await_sc`] with a deadline: `true` when the awaited
    /// iteration advanced before `timeout` elapsed.
    pub fn await_sc_timeout(
        &self,
        sc: usize,
        pid: u64,
        dist: u64,
        timeout: std::time::Duration,
    ) -> bool {
        if dist > pid {
            return true;
        }
        let threshold = pid - dist + 1;
        let cell = &*self.scs[sc];
        self.strategy
            .wait_until_timeout(|| cell.load(Ordering::Acquire) >= threshold, timeout)
    }

    /// Records the advance of iteration `pid` *on behalf of* a
    /// fail-stopped processor, raising the counter to `pid + 1` if it is
    /// still below. Returns `true` if the counter moved.
    ///
    /// Contract: the rescue controller has re-run (on a survivor) the
    /// statement instances of every iteration up to `pid` that the dead
    /// processor owed, so skipping the intermediate waits is sound.
    /// Unlike the normal single-writer primitives this uses an atomic
    /// compare-exchange — acceptable because rescue is a cold
    /// recovery-path operation, not the paper's hot synchronization path.
    pub fn advance_for(&self, sc: usize, pid: u64) -> bool {
        let cell = &*self.scs[sc];
        let target = pid + 1;
        let mut cur = cell.load(Ordering::Acquire);
        loop {
            if cur >= target {
                return false;
            }
            match cell.compare_exchange_weak(cur, target, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value (last advanced iteration + 1).
    pub fn load(&self, sc: usize) -> u64 {
        self.scs[sc].load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Cell;
    use std::sync::Mutex;

    #[test]
    fn advance_serializes_iterations() {
        // Iterations advancing one SC from many threads must form the
        // strict sequence 0, 1, 2, ...
        let scs = ScPool::new(1);
        let log = Mutex::new(Vec::new());
        let next = Cell::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (scs, log, next) = (&scs, &log, &next);
                s.spawn(move || loop {
                    let pid = next.fetch_add(1, Ordering::Relaxed);
                    if pid >= 200 {
                        return;
                    }
                    scs.advance(0, pid);
                    log.lock().unwrap().push(pid);
                });
            }
        });
        let log = log.into_inner().unwrap();
        assert_eq!(log.len(), 200);
        assert!(log.windows(2).all(|w| w[0] < w[1]), "Advance must serialize");
        assert_eq!(scs.load(0), 200);
    }

    #[test]
    fn await_boundary_and_satisfaction() {
        let scs = ScPool::new(2);
        scs.await_sc(1, 0, 3); // boundary: returns immediately
        scs.advance(1, 0);
        scs.await_sc(1, 1, 1); // satisfied by the advance above
    }

    #[test]
    fn doacross_with_scs_matches_chain_order() {
        // The Fig 2.1-style pattern: one source, sinks await distance 2.
        let scs = ScPool::new(1);
        let produced: Vec<Cell> = (0..100).map(|_| Cell::new(0)).collect();
        let next = Cell::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (scs, produced, next) = (&scs, &produced, &next);
                s.spawn(move || loop {
                    let pid = next.fetch_add(1, Ordering::Relaxed);
                    if pid >= 100 {
                        return;
                    }
                    scs.await_sc(0, pid, 2);
                    let upstream = if pid >= 2 {
                        produced[pid as usize - 2].load(Ordering::Acquire)
                    } else {
                        1
                    };
                    assert_ne!(upstream, 0, "await(2) must guarantee the source ran");
                    produced[pid as usize].store(upstream + 1, Ordering::Release);
                    scs.advance(0, pid);
                });
            }
        });
        assert_eq!(produced[98].load(Ordering::Relaxed), 51);
    }

    #[test]
    #[should_panic(expected = "at least one statement counter")]
    fn empty_pool_panics() {
        let _ = ScPool::new(0);
    }

    #[test]
    fn try_variants_probe_without_blocking() {
        let scs = ScPool::new(1);
        assert!(scs.try_await_sc(0, 0, 2), "boundary awaits are trivially satisfied");
        assert!(!scs.try_await_sc(0, 1, 1), "iteration 0 has not advanced yet");
        assert!(!scs.try_advance(0, 1), "iteration 1 may not advance before iteration 0");
        assert!(scs.try_advance(0, 0));
        assert!(scs.try_await_sc(0, 1, 1));
        assert!(scs.try_advance(0, 1));
        assert_eq!(scs.load(0), 2);
    }

    #[test]
    fn advance_for_raises_monotonically_and_releases_waiters() {
        let scs = ScPool::new(1);
        // Iterations 0..=2 fail-stopped; the rescuer re-ran them and
        // advances on their behalf in one stroke.
        assert!(scs.advance_for(0, 2));
        assert_eq!(scs.load(0), 3);
        // Survivor iteration 3 is now unblocked.
        assert!(scs.try_await_sc(0, 3, 1));
        assert!(scs.try_advance(0, 3));
        // A duplicate or late rescue never regresses the counter.
        assert!(!scs.advance_for(0, 1));
        assert!(!scs.advance_for(0, 3));
        assert_eq!(scs.load(0), 4);
    }

    #[test]
    fn timeout_variants_detect_missing_advances() {
        let scs = ScPool::new(1);
        let t0 = std::time::Instant::now();
        assert!(
            !scs.await_sc_timeout(0, 2, 1, std::time::Duration::from_millis(5)),
            "iteration 1 never advances: the await must time out"
        );
        assert!(t0.elapsed() >= std::time::Duration::from_millis(5));
        assert!(
            !scs.advance_timeout(0, 3, std::time::Duration::from_millis(5)),
            "iterations 0..3 never advanced: the advance must time out"
        );
        // The failed advance must not have disturbed the counter.
        assert_eq!(scs.load(0), 0);
        assert!(scs.advance_timeout(0, 0, std::time::Duration::ZERO));
        assert!(scs.await_sc_timeout(0, 1, 1, std::time::Duration::ZERO));
        assert!(scs.await_sc_timeout(0, 0, 4, std::time::Duration::ZERO), "boundary: immediate");
    }
}

//! The reference-based (data-oriented) scheme on real threads — one
//! atomic key per array element, Cedar-style.
//!
//! Provided for completeness of the paper's taxonomy on real hardware:
//! every access to a synchronized element waits for its rank
//! (`key >= rank`), performs the access, and increments the key. Compare
//! the storage: a [`KeyTable`] holds one atomic per touched element,
//! versus the `X` counters of [`crate::pc::PcPool`].

use crate::pad::CachePadded;
use crate::wait::WaitStrategy;
use datasync_loopir::ir::{ArrayId, LoopNest};
use datasync_loopir::ranks::{ordered_accesses, AccessRanks};
use datasync_loopir::space::IterSpace;
use std::sync::atomic::{AtomicU64, Ordering};

/// A table of per-element keys plus the precomputed access ranks.
#[derive(Debug)]
pub struct KeyTable {
    ranks: AccessRanks,
    keys: Box<[CachePadded<AtomicU64>]>,
    strategy: WaitStrategy,
}

impl KeyTable {
    /// Builds the table for a nest (one key per synchronized element,
    /// initialized to rank 0 — the initialization overhead the paper
    /// charges data-oriented schemes for).
    pub fn new(nest: &LoopNest, space: &IterSpace) -> Self {
        let ranks = AccessRanks::compute(nest, space);
        let keys = (0..ranks.n_keys()).map(|_| CachePadded::new(AtomicU64::new(0))).collect();
        Self { ranks, keys, strategy: WaitStrategy::default() }
    }

    /// Number of synchronization variables (keys).
    pub fn n_keys(&self) -> usize {
        self.keys.len()
    }

    /// `true` if the array's accesses are key-synchronized.
    pub fn is_synced(&self, array: ArrayId) -> bool {
        self.ranks.is_synced(array)
    }

    /// Waits for an access's turn; returns a guard-like token meaning the
    /// access may proceed (call [`KeyTable::done`] afterwards). `None`
    /// when the access needs no synchronization.
    pub fn acquire(
        &self,
        pid: u64,
        stmt: datasync_loopir::ir::StmtId,
        pos: usize,
        array: ArrayId,
        element: &[i64],
    ) -> Option<usize> {
        let rank = self.ranks.rank(pid, stmt, pos)?;
        let key = self.ranks.key(array, element).expect("ranked access must have a key");
        let cell = &*self.keys[key];
        self.strategy.wait_until(|| cell.load(Ordering::Acquire) >= rank);
        Some(key)
    }

    /// Publishes completion of an acquired access.
    pub fn done(&self, key: usize) {
        self.keys[key].fetch_add(1, Ordering::AcqRel);
    }
}

/// Runs a whole nest on real threads under the reference-based scheme
/// (abstract semantics; compare with
/// [`datasync_loopir::exec::run_sequential`]).
///
/// Iterations are claimed dynamically in increasing order, which keeps
/// the rank waits deadlock-free.
pub fn run_nest_keyed(nest: &LoopNest, threads: usize, store: &crate::planexec::SharedArrayStore) {
    assert!(threads >= 1);
    let space = IterSpace::of(nest);
    let table = KeyTable::new(nest, &space);
    let next = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let (table, next, space) = (&table, &next, &space);
            scope.spawn(move || loop {
                let pid = next.fetch_add(1, Ordering::Relaxed);
                if pid >= space.count() {
                    return;
                }
                let indices = space.indices(pid);
                for stmt in nest.executed_stmts(pid) {
                    // Reads (in canonical order), then compute, then writes.
                    let mut reads = Vec::new();
                    for (pos, r) in ordered_accesses(stmt).into_iter().enumerate() {
                        let element = r.element(&indices);
                        let token = table.acquire(pid, stmt.id, pos, r.array, &element);
                        if r.kind.is_write() {
                            // Writes happen after the value is computed;
                            // buffer the position. (Tokens must be taken in
                            // canonical order, so acquire now, write below.)
                            let value = datasync_loopir::exec::stmt_value(stmt, &indices, &reads);
                            store.write(r.array, element, value);
                        } else {
                            reads.push(store.read(r.array, &element));
                        }
                        if let Some(key) = token {
                            table.done(key);
                        }
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planexec::SharedArrayStore;
    use datasync_loopir::exec::run_sequential;
    use datasync_loopir::workpatterns::{example2_nested, fig21_loop};

    #[test]
    fn fig21_keyed_matches_oracle() {
        let nest = fig21_loop(150);
        let store = SharedArrayStore::new();
        run_nest_keyed(&nest, 4, &store);
        assert_eq!(store.into_store(), run_sequential(&nest));
    }

    #[test]
    fn nested_keyed_matches_oracle() {
        let nest = example2_nested(8, 7, 2);
        let store = SharedArrayStore::new();
        run_nest_keyed(&nest, 4, &store);
        assert_eq!(store.into_store(), run_sequential(&nest));
    }

    #[test]
    fn storage_scales_with_elements() {
        let nest = fig21_loop(100);
        let space = IterSpace::of(&nest);
        let table = KeyTable::new(&nest, &space);
        assert_eq!(table.n_keys(), 104, "keys per touched element of A");
        assert!(table.is_synced(datasync_loopir::ir::ArrayId(0)));
    }

    #[test]
    fn single_thread_works() {
        let nest = fig21_loop(30);
        let store = SharedArrayStore::new();
        run_nest_keyed(&nest, 1, &store);
        assert_eq!(store.into_store(), run_sequential(&nest));
    }
}

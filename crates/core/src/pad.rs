//! Cache-line padding for contended atomics.
//!
//! Every primitive in this crate gives each processor (or each counter)
//! its own cache line so that busy-waiting on one counter never
//! invalidates a neighbour's line — the software analogue of the paper's
//! per-processor local images. The alignment of 128 bytes covers the
//! 64-byte lines of x86 plus the spatial prefetcher pair, and the
//! 128-byte lines of Apple/ARM big cores.

use std::ops::{Deref, DerefMut};

/// A value padded and aligned to its own cache line(s).
///
/// Drop-in replacement for `crossbeam_utils::CachePadded` (the workspace
/// builds offline with no external crates).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads `value` to a cache line.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_to_cache_line() {
        assert!(std::mem::align_of::<CachePadded<u64>>() >= 128);
        assert!(std::mem::size_of::<CachePadded<u64>>() >= 128);
        let xs: Vec<CachePadded<u64>> = (0..4).map(CachePadded::new).collect();
        let a = &xs[0] as *const _ as usize;
        let b = &xs[1] as *const _ as usize;
        assert!(b - a >= 128, "adjacent values must not share a line");
    }

    #[test]
    fn deref_and_into_inner() {
        let mut p = CachePadded::new(41u32);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }
}

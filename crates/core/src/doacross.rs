//! A self-scheduled Doacross executor over real threads.
//!
//! [`Doacross`] runs the iterations of a loop as processes in the paper's
//! sense: iterations are claimed dynamically in increasing order
//! (processor self-scheduling, the policy all of Section 5's examples
//! assume), each iteration gets a [`ProcessCtx`] exposing the
//! process-oriented primitives, and the executor guarantees the final
//! `transfer_PC` so the folded counter chain always advances.
//!
//! Deadlock freedom: iterations are claimed in increasing pid order and
//! every wait targets a strictly smaller pid (dependences and ownership
//! handoff both point backward), so the smallest unfinished iteration can
//! always run to completion.

use crate::pc::PcPool;
use crate::wait::WaitStrategy;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which primitive set the executor uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Primitives {
    /// Fig 4.2.a: `get_PC` acquires ownership before the first update;
    /// every `mark` then writes unconditionally.
    Basic,
    /// Fig 4.3 (default): `mark_PC` skips while the counter belongs to an
    /// earlier process; only `transfer_PC` may block on ownership.
    #[default]
    Improved,
}

/// Per-iteration context handed to the loop body.
#[derive(Debug)]
pub struct ProcessCtx<'a> {
    pool: &'a PcPool,
    pid: u64,
    primitives: Primitives,
    owned: bool,
    transferred: bool,
}

impl ProcessCtx<'_> {
    /// This iteration's linear process id.
    pub fn pid(&self) -> u64 {
        self.pid
    }

    /// `mark_PC(step)` / `set_PC(step)` — completion of a source
    /// statement. With [`Primitives::Basic`] the first mark acquires the
    /// counter (`get_PC`); with [`Primitives::Improved`] an unowned mark
    /// is skipped.
    ///
    /// # Panics
    ///
    /// Panics if called after [`ProcessCtx::transfer`].
    pub fn mark(&mut self, step: u32) {
        assert!(!self.transferred, "mark after transfer");
        if !self.owned {
            match self.primitives {
                Primitives::Basic => self.pool.get_pc(self.pid),
                Primitives::Improved => {
                    if self.pool.load(self.pid).owner < self.pid {
                        return;
                    }
                }
            }
        }
        self.pool.set_pc(self.pid, step);
        self.owned = true;
    }

    /// `transfer_PC()` / `release_PC()` — completion of the last source
    /// statement. Idempotent; the executor calls it automatically when
    /// the body returns without doing so.
    pub fn transfer(&mut self) {
        if self.transferred {
            return;
        }
        if !self.owned {
            self.pool.get_pc(self.pid);
            self.owned = true;
        }
        self.pool.release_pc(self.pid);
        self.transferred = true;
    }

    /// `wait_PC(dist, step)` — wait for iteration `pid - dist` to
    /// complete source `step`; no-op at the loop boundary
    /// (`dist > pid`).
    pub fn wait(&self, dist: u64, step: u32) {
        self.pool.wait_pc(self.pid, dist, step);
    }
}

/// Builder/executor for Doacross loops.
///
/// # Examples
///
/// A chain `A[i] = A[i-1]` (one source, distance 1):
///
/// ```
/// use datasync_core::doacross::Doacross;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let n = 64usize;
/// let a: Vec<AtomicU64> = (0..n + 1).map(|_| AtomicU64::new(1)).collect();
/// Doacross::new(n as u64).threads(4).pcs(8).run(|i, ctx| {
///     ctx.wait(1, 1); // wait for iteration i-1's source
///     let prev = a[i as usize].load(Ordering::Acquire);
///     a[i as usize + 1].store(prev + 1, Ordering::Release);
///     ctx.transfer();
/// });
/// assert_eq!(a[n].load(Ordering::Relaxed), n as u64 + 1);
/// ```
#[derive(Debug, Clone)]
pub struct Doacross {
    n_iters: u64,
    threads: usize,
    pcs: usize,
    chunk: u64,
    strategy: WaitStrategy,
    primitives: Primitives,
}

impl Doacross {
    /// A loop of `n_iters` iterations (pids `0..n_iters`).
    pub fn new(n_iters: u64) -> Self {
        let threads = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));
        Self {
            n_iters,
            threads,
            pcs: 2 * threads.next_power_of_two(),
            chunk: 1,
            strategy: WaitStrategy::default(),
            primitives: Primitives::default(),
        }
    }

    /// Number of worker threads (the paper's processors).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Number of process counters `X` to fold onto.
    ///
    /// # Panics
    ///
    /// Panics if `x == 0`.
    pub fn pcs(mut self, x: usize) -> Self {
        assert!(x > 0, "need at least one process counter");
        self.pcs = x;
        self
    }

    /// Iterations claimed per self-scheduling step (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn chunk(mut self, chunk: u64) -> Self {
        assert!(chunk > 0, "chunk must be positive");
        self.chunk = chunk;
        self
    }

    /// Busy-wait strategy for all primitives.
    pub fn wait_strategy(mut self, s: WaitStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Chooses the primitive set (basic Fig 4.2 vs improved Fig 4.3).
    pub fn primitives(mut self, p: Primitives) -> Self {
        self.primitives = p;
        self
    }

    /// Runs the loop. `body(pid, ctx)` is called once per iteration, in
    /// parallel; within a thread, claimed iterations run in increasing
    /// pid order.
    ///
    /// If the body returns without calling [`ProcessCtx::transfer`], the
    /// executor transfers on its behalf (keeping the folded chain alive —
    /// the Example 3 rule that every path must hand the counter on).
    pub fn run<F>(&self, body: F)
    where
        F: Fn(u64, &mut ProcessCtx<'_>) + Sync,
    {
        if self.n_iters == 0 {
            return;
        }
        let pool = PcPool::with_strategy(self.pcs, self.strategy);
        let next = AtomicU64::new(0);
        let body = &body;
        let pool_ref = &pool;
        let next_ref = &next;
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(self.n_iters as usize) {
                scope.spawn(move || loop {
                    let start = next_ref.fetch_add(self.chunk, Ordering::Relaxed);
                    if start >= self.n_iters {
                        return;
                    }
                    let end = (start + self.chunk).min(self.n_iters);
                    for pid in start..end {
                        let mut ctx = ProcessCtx {
                            pool: pool_ref,
                            pid,
                            primitives: self.primitives,
                            owned: false,
                            transferred: false,
                        };
                        body(pid, &mut ctx);
                        ctx.transfer();
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn empty_loop_is_fine() {
        Doacross::new(0).threads(2).run(|_, _| panic!("no iterations"));
    }

    #[test]
    fn every_iteration_runs_exactly_once() {
        let n = 500u64;
        let count = AtomicUsize::new(0);
        let sum = AtomicU64::new(0);
        Doacross::new(n).threads(4).pcs(8).run(|pid, _ctx| {
            count.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(pid, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), n as usize);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }

    #[test]
    fn dependence_chain_is_ordered() {
        // Each iteration appends its pid after waiting for pid-1; the log
        // must come out sorted.
        let n = 300u64;
        let log = Mutex::new(Vec::new());
        Doacross::new(n).threads(4).pcs(4).run(|pid, ctx| {
            ctx.wait(1, 1);
            log.lock().unwrap().push(pid);
            ctx.mark(1);
            ctx.transfer();
        });
        let log = log.into_inner().unwrap();
        assert_eq!(log.len(), n as usize);
        assert!(log.windows(2).all(|w| w[0] < w[1]), "chain must serialize in order");
    }

    #[test]
    fn distance_two_chains_interleave() {
        // dist-2 dependence: even and odd chains are independent; verify
        // each chain is ordered.
        let n = 200u64;
        let log = Mutex::new(Vec::new());
        Doacross::new(n).threads(4).pcs(8).run(|pid, ctx| {
            ctx.wait(2, 1);
            log.lock().unwrap().push(pid);
            ctx.mark(1);
            ctx.transfer();
        });
        let log = log.into_inner().unwrap();
        let pos = |p: u64| log.iter().position(|&x| x == p).unwrap();
        for pid in 2..n {
            assert!(pos(pid - 2) < pos(pid), "iteration {pid} ran before {}", pid - 2);
        }
    }

    #[test]
    fn works_with_one_pc_and_one_thread() {
        let n = 50u64;
        let count = AtomicUsize::new(0);
        Doacross::new(n).threads(1).pcs(1).run(|_pid, ctx| {
            ctx.wait(1, 1);
            count.fetch_add(1, Ordering::Relaxed);
            ctx.mark(1);
        });
        assert_eq!(count.load(Ordering::Relaxed), n as usize);
    }

    #[test]
    fn chunked_claiming_still_respects_deps() {
        let n = 240u64;
        let log = Mutex::new(Vec::new());
        Doacross::new(n).threads(3).pcs(8).chunk(5).run(|pid, ctx| {
            ctx.wait(1, 1);
            log.lock().unwrap().push(pid);
            ctx.mark(1);
        });
        let log = log.into_inner().unwrap();
        assert!(log.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn basic_primitives_chain_ordered() {
        let n = 200u64;
        let log = Mutex::new(Vec::new());
        Doacross::new(n)
            .threads(4)
            .pcs(4)
            .primitives(Primitives::Basic)
            .run(|pid, ctx| {
                ctx.wait(1, 1);
                log.lock().unwrap().push(pid);
                ctx.mark(1);
            });
        let log = log.into_inner().unwrap();
        assert_eq!(log.len(), n as usize);
        assert!(log.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn basic_and_improved_agree_on_results() {
        use std::sync::atomic::AtomicU64;
        let n = 128u64;
        let run_mode = |p: Primitives| {
            let acc: Vec<AtomicU64> = (0..n as usize + 1).map(|_| AtomicU64::new(7)).collect();
            Doacross::new(n).threads(4).pcs(8).primitives(p).run(|i, ctx| {
                ctx.wait(1, 1);
                let prev = acc[i as usize].load(Ordering::Acquire);
                acc[i as usize + 1].store(prev.wrapping_mul(31).wrapping_add(i), Ordering::Release);
                ctx.mark(1);
            });
            acc[n as usize].load(Ordering::Relaxed)
        };
        assert_eq!(run_mode(Primitives::Basic), run_mode(Primitives::Improved));
    }

    #[test]
    fn more_threads_than_iterations() {
        let count = AtomicUsize::new(0);
        Doacross::new(3).threads(16).pcs(4).run(|_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }
}

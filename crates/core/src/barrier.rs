//! Barriers built on process counters (Example 4) plus baselines.
//!
//! The paper implements a **butterfly barrier** with one PC per processor
//! and no atomic operations: in round `i`, processor `pid` marks step `i`
//! and waits for `PC[pid xor 2^(i-1)].step >= i`. [`ButterflyBarrier`] is
//! that code with a monotone per-processor counter so the barrier is
//! reusable across episodes. [`DisseminationBarrier`] is the
//! Hensgen–Finkel–Manber variant the paper cites (\[11\]) that works for
//! any processor count, and [`CounterBarrier`] is the centralized
//! (hot-spot prone) baseline the butterfly is compared against.

use crate::pad::CachePadded;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::wait::WaitStrategy;

/// A reusable barrier addressed by processor id.
///
/// Contract: exactly one thread calls [`PhaseBarrier::wait`] per `pid`
/// in `0..processors()`, and every pid participates in every episode.
pub trait PhaseBarrier: Sync {
    /// Blocks until all processors have arrived.
    fn wait(&self, pid: usize);
    /// Number of participating processors.
    fn processors(&self) -> usize;
    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// The butterfly barrier of Fig 5.4, on per-processor process counters.
///
/// Uses no atomic read-modify-write operations — only single-writer
/// stores and loads, exactly as the paper's hardware argument requires.
///
/// # Examples
///
/// ```
/// use datasync_core::barrier::{ButterflyBarrier, PhaseBarrier};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let b = ButterflyBarrier::new(4);
/// let hits = AtomicUsize::new(0);
/// std::thread::scope(|s| {
///     for pid in 0..4 {
///         let (b, hits) = (&b, &hits);
///         s.spawn(move || {
///             hits.fetch_add(1, Ordering::SeqCst);
///             b.wait(pid);
///             assert_eq!(hits.load(Ordering::SeqCst), 4);
///         });
///     }
/// });
/// ```
#[derive(Debug)]
pub struct ButterflyBarrier {
    counters: Box<[CachePadded<AtomicU64>]>,
    log_p: u32,
    strategy: WaitStrategy,
}

impl ButterflyBarrier {
    /// Creates a barrier for `p` processors.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is a power of two and `p >= 1` (use
    /// [`DisseminationBarrier`] for other counts).
    pub fn new(p: usize) -> Self {
        Self::with_strategy(p, WaitStrategy::default())
    }

    /// [`ButterflyBarrier::new`] with an explicit wait strategy.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is a power of two and `p >= 1`.
    pub fn with_strategy(p: usize, strategy: WaitStrategy) -> Self {
        assert!(
            p >= 1 && p.is_power_of_two(),
            "butterfly barrier needs a power-of-two processor count"
        );
        Self {
            counters: (0..p).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
            log_p: p.trailing_zeros(),
            strategy,
        }
    }

    /// [`PhaseBarrier::wait`] with a deadline: `true` once every partner
    /// round completed, `false` if some partner failed to arrive within
    /// `timeout` — the library-user equivalent of the simulator's
    /// deadlock detector for barrier episodes.
    ///
    /// # Episode poisoning
    ///
    /// The butterfly has no atomic read-modify-write to retract an
    /// arrival: each round *stores* this processor's monotone counter
    /// before waiting for the partner (the paper's single-writer
    /// hardware argument). A wait that returns `false` has therefore
    /// already published arrivals for the rounds it got through, and the
    /// episode is **poisoned**: partners may legitimately observe this
    /// processor as arrived and sail through, while this processor's
    /// counter is now out of phase for any future episode. After a
    /// `false` return the barrier must be discarded (and the computation
    /// it guarded treated as failed) — re-entering `wait`,
    /// `wait_timeout` or `try_wait` on a poisoned barrier may wedge or
    /// let an episode leak.
    pub fn wait_timeout(&self, pid: usize, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let base = self.counters[pid].load(Ordering::Relaxed);
        for i in 0..self.log_p {
            let round = base + u64::from(i) + 1;
            self.counters[pid].store(round, Ordering::Release);
            let partner = pid ^ (1usize << i);
            let cell = &self.counters[partner];
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if !self
                .strategy
                .wait_until_timeout(|| cell.load(Ordering::Acquire) >= round, remaining)
            {
                return false;
            }
        }
        true
    }

    /// Non-blocking barrier attempt: completes the episode (returning
    /// `true`) only if every partner round is immediately satisfied.
    ///
    /// Like [`ButterflyBarrier::wait_timeout`], a `false` return has
    /// already published this processor's arrival for the rounds it got
    /// through and **poisons** the episode — see the episode-poisoning
    /// discussion there. `try_wait` is a last-check probe ("has everyone
    /// else already arrived?"), not a polling primitive: calling it in a
    /// retry loop republishes arrivals and corrupts the phase.
    pub fn try_wait(&self, pid: usize) -> bool {
        let base = self.counters[pid].load(Ordering::Relaxed);
        for i in 0..self.log_p {
            let round = base + u64::from(i) + 1;
            self.counters[pid].store(round, Ordering::Release);
            let partner = pid ^ (1usize << i);
            if self.counters[partner].load(Ordering::Acquire) < round {
                return false;
            }
        }
        true
    }

    /// Publishes one full episode of arrivals *on behalf of* a
    /// fail-stopped processor `pid`, releasing survivors that would
    /// otherwise spin on its counter forever.
    ///
    /// Contract: `pid` has permanently stopped (the rescuer is now the
    /// *sole* writer of its counter — the paper's single-writer argument
    /// transfers to the rescuer) and the rescuer calls this at most once
    /// per episode, after re-running any work the dead processor owed.
    ///
    /// **What this does and does not guarantee.** It guarantees
    /// *liveness*: no survivor wedges on the dead counter, and survivor
    /// episodes keep completing. It does **not** restore the
    /// all-arrived guarantee for information routed *through* the dead
    /// position: in a butterfly, survivor A may learn of survivor B's
    /// arrival only via the dead processor's rounds, and a stand-in
    /// store publishes those rounds without waiting for B. A fixed
    /// topology cannot drop a member; survivors needing full barrier
    /// semantics after a fail-stop should reconfigure to a
    /// [`crate::quorum::QuorumBarrier`] over the live membership.
    pub fn arrive_for(&self, pid: usize) {
        let base = self.counters[pid].load(Ordering::Acquire);
        self.counters[pid].store(base + u64::from(self.log_p), Ordering::Release);
    }
}

impl PhaseBarrier for ButterflyBarrier {
    fn wait(&self, pid: usize) {
        // Only thread `pid` ever writes counters[pid], so its own value
        // can be read relaxed.
        let base = self.counters[pid].load(Ordering::Relaxed);
        for i in 0..self.log_p {
            let round = base + u64::from(i) + 1;
            self.counters[pid].store(round, Ordering::Release);
            let partner = pid ^ (1usize << i);
            let cell = &self.counters[partner];
            self.strategy.wait_until(|| cell.load(Ordering::Acquire) >= round);
        }
    }

    fn processors(&self) -> usize {
        self.counters.len()
    }

    fn name(&self) -> &'static str {
        "butterfly"
    }
}

/// The dissemination barrier of Hensgen, Finkel and Manber (the paper's
/// reference \[11\]); works for any processor count in `ceil(log2 P)`
/// rounds.
#[derive(Debug)]
pub struct DisseminationBarrier {
    counters: Box<[CachePadded<AtomicU64>]>,
    rounds: u32,
    strategy: WaitStrategy,
}

impl DisseminationBarrier {
    /// Creates a barrier for `p >= 1` processors.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn new(p: usize) -> Self {
        Self::with_strategy(p, WaitStrategy::default())
    }

    /// [`DisseminationBarrier::new`] with an explicit wait strategy.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn with_strategy(p: usize, strategy: WaitStrategy) -> Self {
        assert!(p >= 1, "barrier needs at least one processor");
        let rounds = usize::BITS - (p - 1).leading_zeros(); // ceil(log2 p); 0 for p == 1
        Self {
            counters: (0..p).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
            rounds,
            strategy,
        }
    }

    /// Publishes one episode of arrivals on behalf of a fail-stopped
    /// processor — the dissemination counterpart of
    /// [`ButterflyBarrier::arrive_for`], with the same contract and the
    /// same liveness-only guarantee (see there; reconfigure to a
    /// [`crate::quorum::QuorumBarrier`] for full semantics).
    pub fn arrive_for(&self, pid: usize) {
        let base = self.counters[pid].load(Ordering::Acquire);
        self.counters[pid].store(base + u64::from(self.rounds), Ordering::Release);
    }
}

impl PhaseBarrier for DisseminationBarrier {
    fn wait(&self, pid: usize) {
        let p = self.counters.len();
        let base = self.counters[pid].load(Ordering::Relaxed);
        for i in 0..self.rounds {
            let round = base + u64::from(i) + 1;
            self.counters[pid].store(round, Ordering::Release);
            // In round i, pid is signalled by (pid - 2^i) mod p.
            let signaller = (pid + p - ((1usize << i) % p)) % p;
            let cell = &self.counters[signaller];
            self.strategy.wait_until(|| cell.load(Ordering::Acquire) >= round);
        }
    }

    fn processors(&self) -> usize {
        self.counters.len()
    }

    fn name(&self) -> &'static str {
        "dissemination"
    }
}

/// The centralized sense-reversing counter barrier — the baseline whose
/// hot-spot behaviour Example 4 argues against. Requires an atomic
/// fetch-and-add per arrival and makes every processor spin on one shared
/// location.
#[derive(Debug)]
pub struct CounterBarrier {
    count: CachePadded<AtomicUsize>,
    sense: CachePadded<AtomicU64>,
    episodes: Box<[CachePadded<AtomicU64>]>,
    p: usize,
    strategy: WaitStrategy,
}

impl CounterBarrier {
    /// Creates a barrier for `p >= 1` processors.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn new(p: usize) -> Self {
        Self::with_strategy(p, WaitStrategy::default())
    }

    /// [`CounterBarrier::new`] with an explicit wait strategy.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn with_strategy(p: usize, strategy: WaitStrategy) -> Self {
        assert!(p >= 1, "barrier needs at least one processor");
        Self {
            count: CachePadded::new(AtomicUsize::new(0)),
            sense: CachePadded::new(AtomicU64::new(0)),
            episodes: (0..p).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
            p,
            strategy,
        }
    }
}

impl PhaseBarrier for CounterBarrier {
    fn wait(&self, pid: usize) {
        let episode = self.episodes[pid].load(Ordering::Relaxed) + 1;
        self.episodes[pid].store(episode, Ordering::Relaxed);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.p {
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(episode, Ordering::Release);
        } else {
            let sense = &*self.sense;
            self.strategy.wait_until(|| sense.load(Ordering::Acquire) >= episode);
        }
    }

    fn processors(&self) -> usize {
        self.p
    }

    fn name(&self) -> &'static str {
        "counter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Classic barrier stress: each thread increments a per-episode slot
    /// before the barrier and checks everyone's increment after it.
    fn stress(barrier: &dyn PhaseBarrier, episodes: usize) {
        let p = barrier.processors();
        let slots: Vec<AtomicUsize> = (0..episodes).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for pid in 0..p {
                let slots = &slots;
                s.spawn(move || {
                    for (e, slot) in slots.iter().enumerate() {
                        slot.fetch_add(1, Ordering::SeqCst);
                        barrier.wait(pid);
                        assert_eq!(
                            slot.load(Ordering::SeqCst),
                            p,
                            "{} barrier episode {e} leaked (pid {pid})",
                            barrier.name()
                        );
                        barrier.wait(pid);
                    }
                });
            }
        });
    }

    #[test]
    fn butterfly_many_episodes() {
        for p in [1usize, 2, 4, 8] {
            let b = ButterflyBarrier::new(p);
            stress(&b, 50);
        }
    }

    #[test]
    fn dissemination_any_p() {
        for p in [1usize, 2, 3, 5, 6, 7, 8] {
            let b = DisseminationBarrier::new(p);
            stress(&b, 30);
        }
    }

    #[test]
    fn counter_many_episodes() {
        for p in [1usize, 3, 4, 7] {
            let b = CounterBarrier::new(p);
            stress(&b, 50);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn butterfly_rejects_non_power_of_two() {
        let _ = ButterflyBarrier::new(6);
    }

    #[test]
    fn names_and_sizes() {
        assert_eq!(ButterflyBarrier::new(4).name(), "butterfly");
        assert_eq!(DisseminationBarrier::new(5).processors(), 5);
        assert_eq!(CounterBarrier::new(3).name(), "counter");
    }

    #[test]
    fn single_processor_barriers_are_noops() {
        ButterflyBarrier::new(1).wait(0);
        DisseminationBarrier::new(1).wait(0);
        CounterBarrier::new(1).wait(0);
    }

    #[test]
    fn butterfly_wait_timeout_completes_full_episodes() {
        let b = ButterflyBarrier::new(4);
        std::thread::scope(|s| {
            for pid in 0..4 {
                let b = &b;
                s.spawn(move || {
                    for _ in 0..20 {
                        assert!(b.wait_timeout(pid, std::time::Duration::from_secs(60)));
                    }
                });
            }
        });
        // Zero rounds for p == 1: trivially true even with a zero deadline.
        assert!(ButterflyBarrier::new(1).wait_timeout(0, std::time::Duration::ZERO));
    }

    #[test]
    fn butterfly_wait_timeout_detects_missing_partner() {
        let b = ButterflyBarrier::new(2);
        let t0 = std::time::Instant::now();
        assert!(
            !b.wait_timeout(0, std::time::Duration::from_millis(5)),
            "partner 1 never arrives: the episode must time out"
        );
        assert!(t0.elapsed() >= std::time::Duration::from_millis(5));
        // The timed-out wait already published pid 0's arrival (the
        // poisoning documented on wait_timeout): the late partner is
        // released by it, but the barrier must now be discarded.
        b.wait(1);
    }

    #[test]
    fn rescuer_arrives_for_a_fail_stopped_processor() {
        // pid 3 fail-stops; pid 0 doubles as the rescue controller and
        // stands in for it each episode. arrive_for guarantees liveness
        // only (survivors waiting on the dead counter are released and
        // episodes keep completing — this test finishing IS the
        // assertion); full all-arrived semantics need a QuorumBarrier.
        let b = ButterflyBarrier::new(4);
        let done = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for pid in 0..3 {
                let (b, done) = (&b, &done);
                s.spawn(move || {
                    for _ in 0..20 {
                        if pid == 0 {
                            b.arrive_for(3);
                        }
                        b.wait(pid);
                        done.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(done.load(Ordering::SeqCst), 3 * 20, "every survivor episode must complete");

        let d = DisseminationBarrier::new(3);
        std::thread::scope(|s| {
            for pid in 0..2 {
                let d = &d;
                s.spawn(move || {
                    for _ in 0..20 {
                        if pid == 0 {
                            d.arrive_for(2);
                        }
                        d.wait(pid);
                    }
                });
            }
        });
    }

    #[test]
    fn butterfly_try_wait_is_a_last_check_probe() {
        // p == 1: no rounds, always true.
        assert!(ButterflyBarrier::new(1).try_wait(0));
        let b = ButterflyBarrier::new(2);
        std::thread::scope(|s| {
            let b = &b;
            s.spawn(move || b.wait(1));
            // Wait until the partner has published its arrival, then the
            // probe both succeeds and releases the partner.
            while b.counters[1].load(Ordering::Acquire) < 1 {
                std::hint::spin_loop();
            }
            assert!(b.try_wait(0));
        });
        // A fresh episode with an absent partner: the probe fails (and
        // per its contract this barrier is now poisoned).
        let b = ButterflyBarrier::new(2);
        assert!(!b.try_wait(0));
    }
}

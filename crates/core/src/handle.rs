//! The improved primitives of Fig 4.3.
//!
//! [`ProcessHandle`] wraps one process's view of its process counter. The
//! improvement over the basic primitives is that a process need not
//! acquire ownership before its first source statement: `mark_PC` simply
//! skips the update while the counter still belongs to an earlier process
//! (`owner < myPC`), and the final `transfer_PC` acquires ownership if it
//! was never obtained — so only the ownership *handoff* can ever block,
//! never an intermediate mark.

use crate::pc::{PcPool, PcValue};

/// One process's handle on its (possibly shared) process counter.
///
/// # Examples
///
/// ```
/// use datasync_core::{pc::PcPool, handle::ProcessHandle};
///
/// let pool = PcPool::new(2);
/// // Process 0 runs a two-source iteration.
/// let mut h = ProcessHandle::load_index(&pool, 0);
/// h.mark_pc(1);
/// h.transfer_pc();
/// // Process 2 (folded onto the same counter) can now take over.
/// let mut h2 = ProcessHandle::load_index(&pool, 2);
/// h2.mark_pc(1);
/// assert!(h2.owned());
/// h2.transfer_pc();
/// ```
#[derive(Debug)]
pub struct ProcessHandle<'a> {
    pool: &'a PcPool,
    pid: u64,
    owned: bool,
    transferred: bool,
}

impl<'a> ProcessHandle<'a> {
    /// `load_index(pid)`: saves the PC index and resets the `owned` flag.
    pub fn load_index(pool: &'a PcPool, pid: u64) -> Self {
        Self { pool, pid, owned: false, transferred: false }
    }

    /// This process's id.
    pub fn pid(&self) -> u64 {
        self.pid
    }

    /// Whether the process has taken ownership of its counter.
    pub fn owned(&self) -> bool {
        self.owned
    }

    /// Whether [`ProcessHandle::transfer_pc`] has run.
    pub fn transferred(&self) -> bool {
        self.transferred
    }

    /// `mark_PC(step)`: records completion of a source statement if the
    /// counter is available; otherwise proceeds without waiting.
    ///
    /// # Panics
    ///
    /// Panics if called after [`ProcessHandle::transfer_pc`].
    pub fn mark_pc(&mut self, step: u32) {
        assert!(!self.transferred, "mark_pc after transfer_pc");
        if !self.owned {
            let current = self.pool.load(self.pid);
            if current.owner < self.pid {
                // Not yet transferred to us: skip, the final transfer_PC
                // guarantees the information is eventually published.
                return;
            }
        }
        self.pool.set_pc(self.pid, step);
        self.owned = true;
    }

    /// `transfer_PC()`: signals completion of every source statement and
    /// hands the counter to process `pid + X`, acquiring ownership first
    /// if necessary. Idempotent.
    pub fn transfer_pc(&mut self) {
        if self.transferred {
            return;
        }
        if !self.owned {
            self.pool.get_pc(self.pid);
            self.owned = true;
        }
        self.pool.release_pc(self.pid);
        self.transferred = true;
    }

    /// `wait_PC(dist, step)`: busy-waits until process `pid - dist` has
    /// reached `step` (immediately satisfied when `dist > pid`).
    pub fn wait_pc(&self, dist: u64, step: u32) {
        self.pool.wait_pc(self.pid, dist, step);
    }

    /// Current value of the counter slot for this pid.
    pub fn peek(&self) -> PcValue {
        self.pool.load(self.pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mark_without_ownership_is_skipped() {
        let pool = PcPool::new(2);
        // Process 2 folds onto slot 0, still owned by process 0.
        let mut h = ProcessHandle::load_index(&pool, 2);
        h.mark_pc(1);
        assert!(!h.owned());
        assert_eq!(pool.load(0), PcValue::new(0, 0), "mark must not clobber the owner");
    }

    #[test]
    fn mark_after_transfer_takes_ownership() {
        let pool = PcPool::new(2);
        let mut h0 = ProcessHandle::load_index(&pool, 0);
        h0.transfer_pc();
        let mut h2 = ProcessHandle::load_index(&pool, 2);
        h2.mark_pc(1);
        assert!(h2.owned());
        assert_eq!(pool.load(2), PcValue::new(2, 1));
    }

    #[test]
    fn transfer_acquires_if_unowned() {
        let pool = PcPool::new(2);
        let mut h0 = ProcessHandle::load_index(&pool, 0);
        // No marks at all (e.g. all sources in a skipped branch arm):
        // transfer still works and hands over.
        h0.transfer_pc();
        assert!(pool.owns(2));
        assert!(h0.transferred());
        // Idempotent.
        h0.transfer_pc();
        assert!(pool.owns(2));
    }

    #[test]
    #[should_panic(expected = "mark_pc after transfer_pc")]
    fn mark_after_transfer_panics() {
        let pool = PcPool::new(2);
        let mut h = ProcessHandle::load_index(&pool, 0);
        h.transfer_pc();
        h.mark_pc(1);
    }

    #[test]
    fn chain_of_three_processes() {
        // X = 1: processes 0, 1, 2 share one counter and serialize on the
        // ownership handoff while marks skip when unowned.
        let pool = Arc::new(PcPool::new(1));
        let p = Arc::clone(&pool);
        let t = std::thread::spawn(move || {
            for pid in [1u64, 2u64] {
                let mut h = ProcessHandle::load_index(&p, pid);
                h.wait_pc(1, 1); // wait for predecessor's first source
                h.mark_pc(1);
                h.transfer_pc();
            }
        });
        let mut h = ProcessHandle::load_index(&pool, 0);
        h.mark_pc(1);
        h.transfer_pc();
        t.join().unwrap();
        assert!(pool.owns(3));
    }
}

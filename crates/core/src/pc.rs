//! Process counters and the basic primitives of Fig 4.2.a.
//!
//! A process counter (PC) holds `<owner, step>`: the id of the process
//! that currently owns it and the number of source statements that
//! process has completed. The paper's ordering —
//! `<w,x> >= <y,z>` iff `w > y`, or `w = y` and `x >= z` — is preserved
//! by packing `owner` into the high 32 bits of a `u64`, so a single
//! atomic load plus an integer compare implements `wait_PC`.
//!
//! As the paper notes (Section 6), the primitives need no atomic
//! read-modify-write operations: each PC is written by exactly one
//! process at a time and `wait_PC` waits for the value to *exceed* a
//! threshold. The Rust implementation uses plain `Release` stores and
//! `Acquire` loads, which is also what makes a source's memory effects
//! visible before its completion is signalled (requirement (1) of
//! Section 2.2).

use crate::pad::CachePadded;
use crate::wait::WaitStrategy;
use std::sync::atomic::{AtomicU64, Ordering};

/// A process-counter value `<owner, step>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PcValue {
    /// Owning process id.
    pub owner: u64,
    /// Completed source-statement count of the owner.
    pub step: u32,
}

impl PcValue {
    /// Creates a value.
    ///
    /// # Panics
    ///
    /// Panics if `owner >= 2^32` (the packed representation reserves
    /// 32 bits for each field).
    pub fn new(owner: u64, step: u32) -> Self {
        assert!(owner < (1 << 32), "process id {owner} exceeds 32 bits");
        Self { owner, step }
    }

    /// Packs into the atomic representation.
    pub fn pack(self) -> u64 {
        (self.owner << 32) | u64::from(self.step)
    }

    /// Unpacks from the atomic representation.
    pub fn unpack(v: u64) -> Self {
        Self { owner: v >> 32, step: (v & 0xffff_ffff) as u32 }
    }
}

impl std::fmt::Display for PcValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<{}, {}>", self.owner, self.step)
    }
}

/// A pool of `X` process counters shared by all iterations of a Doacross
/// loop (the *folding* of Section 4: processes `i`, `X+i`, `2X+i`, …
/// share `PC[i mod X]`).
///
/// # Examples
///
/// ```
/// use datasync_core::pc::{PcPool, PcValue};
///
/// let pool = PcPool::new(4);
/// // Initially PC[i] = <i, 0>.
/// assert_eq!(pool.load(2), PcValue::new(2, 0));
/// // Process 2 completes its first source statement...
/// pool.set_pc(2, 1);
/// assert_eq!(pool.load(2), PcValue::new(2, 1));
/// // ...and eventually hands the counter to process 6.
/// pool.release_pc(2);
/// assert_eq!(pool.load(6), PcValue::new(6, 0));
/// ```
#[derive(Debug)]
pub struct PcPool {
    pcs: Box<[CachePadded<AtomicU64>]>,
    x: usize,
    strategy: WaitStrategy,
}

impl PcPool {
    /// Creates a pool of `x` counters, `PC[i] = <i, 0>`.
    ///
    /// The paper recommends `x` a power of two (index masking) and a
    /// small multiple of the processor count; any `x >= 1` is accepted.
    ///
    /// # Panics
    ///
    /// Panics if `x == 0`.
    pub fn new(x: usize) -> Self {
        Self::with_strategy(x, WaitStrategy::default())
    }

    /// [`PcPool::new`] with an explicit busy-wait strategy.
    ///
    /// # Panics
    ///
    /// Panics if `x == 0`.
    pub fn with_strategy(x: usize, strategy: WaitStrategy) -> Self {
        assert!(x > 0, "a pool needs at least one process counter");
        let pcs = (0..x)
            .map(|i| CachePadded::new(AtomicU64::new(PcValue::new(i as u64, 0).pack())))
            .collect();
        Self { pcs, x, strategy }
    }

    /// Number of counters (`X`).
    pub fn x(&self) -> usize {
        self.x
    }

    /// The busy-wait strategy.
    pub fn strategy(&self) -> WaitStrategy {
        self.strategy
    }

    /// Index of the counter used by process `pid`.
    pub fn index_of(&self, pid: u64) -> usize {
        (pid % self.x as u64) as usize
    }

    /// Reads the counter of process `pid`'s slot.
    pub fn load(&self, pid: u64) -> PcValue {
        PcValue::unpack(self.pcs[self.index_of(pid)].load(Ordering::Acquire))
    }

    /// `set_PC(step)`: publishes that process `pid` has completed source
    /// statement `step`.
    ///
    /// The caller must own the counter (i.e. be process `pid` after
    /// acquiring ownership); this is the basic primitive of Fig 4.2.a —
    /// see [`crate::handle::ProcessHandle`] for the improved variant that
    /// tolerates not owning it yet.
    pub fn set_pc(&self, pid: u64, step: u32) {
        self.pcs[self.index_of(pid)].store(PcValue::new(pid, step).pack(), Ordering::Release);
    }

    /// `release_PC()`: hands the counter to process `pid + X` with step 0.
    pub fn release_pc(&self, pid: u64) {
        self.pcs[self.index_of(pid)]
            .store(PcValue::new(pid + self.x as u64, 0).pack(), Ordering::Release);
    }

    /// `wait_PC(dist, step)`: busy-waits until process `pid - dist` has
    /// reached `step` (or a later process owns the slot).
    ///
    /// Per the loop-boundary rule, returns immediately when
    /// `dist > pid` (no such source iteration exists).
    pub fn wait_pc(&self, pid: u64, dist: u64, step: u32) {
        if dist > pid {
            return;
        }
        let target = pid - dist;
        let threshold = PcValue::new(target, step).pack();
        let cell = &self.pcs[self.index_of(target)];
        self.strategy.wait_until(|| cell.load(Ordering::Acquire) >= threshold);
    }

    /// `get_PC()`: waits until process `pid` owns its counter
    /// (equivalent to `wait_PC(0, 0)`).
    pub fn get_pc(&self, pid: u64) {
        self.wait_pc(pid, 0, 0);
    }

    /// Non-blocking probe of `wait_PC(dist, step)`: `true` when the wait
    /// would return immediately.
    pub fn try_wait_pc(&self, pid: u64, dist: u64, step: u32) -> bool {
        if dist > pid {
            return true;
        }
        let target = pid - dist;
        let threshold = PcValue::new(target, step).pack();
        self.pcs[self.index_of(target)].load(Ordering::Acquire) >= threshold
    }

    /// `wait_PC` with a deadline: busy-waits until the condition holds or
    /// `timeout` elapses. Returns `true` on success — a `false` usually
    /// means a missing `mark_PC`/`transfer_PC` upstream (the library-user
    /// equivalent of the simulator's deadlock detector).
    pub fn wait_pc_timeout(
        &self,
        pid: u64,
        dist: u64,
        step: u32,
        timeout: std::time::Duration,
    ) -> bool {
        if dist > pid {
            return true;
        }
        let target = pid - dist;
        let threshold = PcValue::new(target, step).pack();
        let cell = &self.pcs[self.index_of(target)];
        self.strategy
            .wait_until_timeout(|| cell.load(Ordering::Acquire) >= threshold, timeout)
    }

    /// `release_PC` *on behalf of* a fail-stopped process `pid`, raising
    /// its slot to `<pid + X, 0>` if the slot has not already moved past
    /// that value. Returns `true` if the slot moved.
    ///
    /// Contract: the rescue controller has re-run the dead process's
    /// remaining source statements on a survivor, so handing the counter
    /// to the next folded process is sound. The monotone guard means a
    /// late or duplicate rescue can never regress a slot another process
    /// already owns. Uses an atomic compare-exchange — a cold
    /// recovery-path operation, not the paper's RMW-free hot path.
    pub fn release_for(&self, pid: u64) -> bool {
        let cell = &self.pcs[self.index_of(pid)];
        let target = PcValue::new(pid + self.x as u64, 0).pack();
        let mut cur = cell.load(Ordering::Acquire);
        loop {
            if cur >= target {
                return false;
            }
            match cell.compare_exchange_weak(cur, target, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// `true` if process `pid` currently owns its slot.
    pub fn owns(&self, pid: u64) -> bool {
        self.load(pid).owner >= pid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pc_value_ordering_matches_paper() {
        // <w,x> >= <y,z> iff w>y or (w=y and x>=z).
        assert!(PcValue::new(3, 0).pack() > PcValue::new(2, 999).pack());
        assert!(PcValue::new(2, 5).pack() >= PcValue::new(2, 5).pack());
        assert!(PcValue::new(2, 5).pack() < PcValue::new(2, 6).pack());
        let v = PcValue::new(7, 42);
        assert_eq!(PcValue::unpack(v.pack()), v);
        assert_eq!(format!("{v}"), "<7, 42>");
    }

    #[test]
    #[should_panic(expected = "exceeds 32 bits")]
    fn oversized_pid_panics() {
        let _ = PcValue::new(1 << 32, 0);
    }

    #[test]
    fn initial_assignment() {
        let pool = PcPool::new(8);
        for i in 0..8 {
            assert_eq!(pool.load(i), PcValue::new(i, 0));
            assert!(pool.owns(i));
        }
        // Folded processes do not own their slot initially.
        assert!(!pool.owns(9));
    }

    #[test]
    fn set_release_cycle() {
        let pool = PcPool::new(4);
        pool.set_pc(1, 1);
        pool.set_pc(1, 2);
        assert_eq!(pool.load(1), PcValue::new(1, 2));
        pool.release_pc(1);
        assert_eq!(pool.load(5), PcValue::new(5, 0));
        assert!(pool.owns(5));
        pool.set_pc(5, 3);
        pool.release_pc(5);
        assert!(pool.owns(9));
    }

    #[test]
    fn boundary_wait_returns_immediately() {
        let pool = PcPool::new(4);
        // dist > pid: no source iteration; must not block.
        pool.wait_pc(2, 3, 7);
        pool.wait_pc(0, 1, 1);
    }

    #[test]
    fn wait_satisfied_by_later_owner() {
        // Waiting for <1, 3> is satisfied by <5, 0> (owner dominance).
        let pool = PcPool::new(4);
        pool.release_pc(1);
        pool.wait_pc(2, 1, 3); // target = 1, now owned by 5 -> proceed
    }

    #[test]
    fn cross_thread_handoff() {
        let pool = Arc::new(PcPool::new(2));
        let p2 = Arc::clone(&pool);
        let t = std::thread::spawn(move || {
            // Process 3 waits for process 2 to reach step 1, then for
            // ownership of its own slot.
            p2.wait_pc(3, 1, 1);
            p2.get_pc(3);
            p2.set_pc(3, 1);
            p2.release_pc(3);
        });
        // Process 2: mark step 1, release; process 1: release slot 1 to 3.
        pool.set_pc(2, 1);
        pool.get_pc(1);
        pool.release_pc(1);
        pool.release_pc(2);
        t.join().unwrap();
        assert!(pool.owns(5));
        assert!(pool.owns(4));
    }

    #[test]
    #[should_panic(expected = "at least one process counter")]
    fn zero_pool_panics() {
        let _ = PcPool::new(0);
    }

    #[test]
    fn try_wait_probes_without_blocking() {
        let pool = PcPool::new(4);
        assert!(pool.try_wait_pc(2, 3, 9), "boundary waits are trivially satisfied");
        assert!(!pool.try_wait_pc(2, 1, 1), "process 1 has not marked step 1");
        pool.set_pc(1, 1);
        assert!(pool.try_wait_pc(2, 1, 1));
    }

    #[test]
    fn wait_timeout_detects_missing_marks() {
        let pool = PcPool::new(4);
        let t0 = std::time::Instant::now();
        let ok = pool.wait_pc_timeout(3, 1, 5, std::time::Duration::from_millis(10));
        assert!(!ok, "nobody marks step 5: the wait must time out");
        assert!(t0.elapsed() >= std::time::Duration::from_millis(10));
        pool.set_pc(2, 5);
        assert!(pool.wait_pc_timeout(3, 1, 5, std::time::Duration::from_millis(10)));
    }

    #[test]
    fn release_for_hands_a_dead_slot_to_the_next_process() {
        let pool = PcPool::new(4);
        // Process 1 fail-stopped mid-iteration; the rescuer re-ran its
        // remaining sources and releases its counter on its behalf.
        assert!(pool.release_for(1));
        assert_eq!(pool.load(5), PcValue::new(5, 0));
        assert!(pool.owns(5));
        // Waiters on process 1's steps proceed by owner dominance.
        assert!(pool.try_wait_pc(2, 1, 7));
        // A duplicate rescue, or one that arrives after the slot already
        // moved past the target, is a no-op.
        assert!(!pool.release_for(1));
        pool.set_pc(5, 2);
        pool.release_pc(5);
        assert!(!pool.release_for(5), "slot already owned by process 9");
        assert!(pool.owns(9));
    }

    #[test]
    fn wait_timeout_honours_every_strategy() {
        use crate::wait::WaitStrategy;
        for s in
            [WaitStrategy::Spin, WaitStrategy::SpinThenYield { spins: 4 }, WaitStrategy::Backoff]
        {
            let pool = PcPool::with_strategy(4, s);
            // Boundary waits never consult the clock.
            assert!(pool.wait_pc_timeout(1, 2, 9, std::time::Duration::ZERO));
            assert!(!pool.wait_pc_timeout(2, 1, 3, std::time::Duration::from_millis(2)));
            pool.set_pc(1, 3);
            assert!(pool.wait_pc_timeout(2, 1, 3, std::time::Duration::ZERO));
        }
    }
}

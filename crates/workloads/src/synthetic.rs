//! Random Doacross loop generation for property-based testing.
//!
//! Generates loops with the ingredients the paper's schemes must handle:
//! multiple shared arrays with affine references at assorted offsets,
//! private result arrays, optional branches, and assorted statement
//! costs. Every generated loop is valid IR; whether it carries
//! dependences (and which) is up to the analysis.

use datasync_loopir::ir::{AccessKind, ArrayId, ArrayRef, LinExpr, LoopNest, LoopNestBuilder};
use datasync_sim::rng::SplitMix64;

/// Parameters for the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthParams {
    /// Iteration count of the loop.
    pub n_iters: i64,
    /// Statements, min..=max.
    pub stmts: (usize, usize),
    /// Shared arrays to draw references from.
    pub arrays: usize,
    /// Maximum absolute subscript offset.
    pub max_offset: i64,
    /// Statement cost range.
    pub cost: (u32, u32),
    /// Probability (percent) that the loop contains a two-arm branch.
    pub branch_pct: u32,
}

impl Default for SynthParams {
    fn default() -> Self {
        Self { n_iters: 40, stmts: (2, 5), arrays: 2, max_offset: 3, cost: (1, 6), branch_pct: 30 }
    }
}

/// Generates a random loop from a seed (deterministic per seed).
pub fn random_nest(seed: u64, params: &SynthParams) -> LoopNest {
    let mut rng = SplitMix64::new(seed);
    let n_stmts = rng.range_usize(params.stmts.0, params.stmts.1);
    let with_branch = n_stmts >= 3 && rng.chance_pct(params.branch_pct);

    let make_refs = |rng: &mut SplitMix64, stmt_ix: usize| -> Vec<ArrayRef> {
        let mut refs = Vec::new();
        let n_refs = rng.range_usize(1, 3);
        for _ in 0..n_refs {
            let array = ArrayId(rng.range_usize(0, params.arrays - 1));
            let kind = if rng.chance_pct(40) { AccessKind::Write } else { AccessKind::Read };
            let offset = rng.range_i64(-params.max_offset, params.max_offset);
            refs.push(ArrayRef::simple(array, kind, offset));
        }
        // A private result array so the oracle observes read values.
        refs.push(ArrayRef::simple(ArrayId(100 + stmt_ix), AccessKind::Write, 0));
        refs
    };

    let mut b = LoopNestBuilder::new(1, params.n_iters);
    let mut rng2 = SplitMix64::new(seed ^ 0x5eed);
    let branch_at =
        if with_branch { rng.range_usize(0, n_stmts.saturating_sub(2)) } else { usize::MAX };
    let mut ix = 0usize;
    let mut remaining = n_stmts;
    while remaining > 0 {
        let cost = rng.range_u32(params.cost.0, params.cost.1);
        if ix == branch_at && remaining >= 2 {
            let arm_a = vec![("Ba", cost, make_refs(&mut rng2, ix))];
            let arm_b = vec![
                ("Bb", cost, make_refs(&mut rng2, ix + 1000)),
                ("Bc", cost, make_refs(&mut rng2, ix + 2000)),
            ];
            b = b.branch(vec![arm_a, arm_b]);
            remaining = remaining.saturating_sub(2);
            ix += 2;
        } else {
            let label = format!("S{ix}");
            b = b.stmt(&label, cost, make_refs(&mut rng2, ix));
            remaining -= 1;
            ix += 1;
        }
    }
    b.build()
}

/// Generates a random depth-2 nest (Example 2-shaped) from a seed.
///
/// Subscripts are per-dimension affine with small offsets, so the
/// analysis produces constant distance *vectors* that linearize onto
/// process ids.
pub fn random_nest_2d(seed: u64, n: i64, m: i64) -> LoopNest {
    let mut rng = SplitMix64::new(seed ^ 0x2d2d_2d2d);
    let n_stmts = rng.range_usize(1, 3);
    let mut b = LoopNestBuilder::new(1, n).inner(1, m);
    for ix in 0..n_stmts {
        let mut refs = Vec::new();
        for _ in 0..rng.range_usize(1, 2) {
            let array = ArrayId(rng.range_usize(0, 1));
            let kind = if rng.chance_pct(50) { AccessKind::Write } else { AccessKind::Read };
            let o1 = rng.range_i64(-1, 1);
            let o2 = rng.range_i64(-1, 1);
            refs.push(ArrayRef::new(
                array,
                kind,
                vec![LinExpr::index(0, o1), LinExpr::index(1, o2)],
            ));
        }
        refs.push(ArrayRef::new(
            ArrayId(100 + ix),
            AccessKind::Write,
            vec![LinExpr::index(0, 0), LinExpr::index(1, 0)],
        ));
        b = b.stmt(&format!("S{ix}"), rng.range_u32(1, 5), refs);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasync_loopir::analysis::analyze;
    use datasync_loopir::exec::run_sequential;

    #[test]
    fn deterministic_per_seed() {
        let p = SynthParams::default();
        assert_eq!(random_nest(7, &p), random_nest(7, &p));
        // Different seeds give different loops (overwhelmingly).
        let distinct = (0..20).map(|s| random_nest(s, &p)).collect::<Vec<_>>();
        let all_same = distinct.windows(2).all(|w| w[0] == w[1]);
        assert!(!all_same);
    }

    #[test]
    fn generated_loops_analyze_and_run() {
        let p = SynthParams::default();
        let mut saw_carried = false;
        for seed in 0..30 {
            let nest = random_nest(seed, &p);
            let g = analyze(&nest);
            saw_carried |= g.carried().next().is_some();
            let store = run_sequential(&nest);
            assert!(store.written_len() > 0, "seed {seed}");
        }
        assert!(saw_carried, "generator should produce carried dependences");
    }

    #[test]
    fn two_dim_nests_generate_and_run() {
        for seed in 0..20 {
            let nest = random_nest_2d(seed, 5, 6);
            assert_eq!(nest.depth(), 2);
            let _ = analyze(&nest);
            assert!(run_sequential(&nest).written_len() > 0);
        }
    }

    #[test]
    fn branches_appear() {
        let p = SynthParams { branch_pct: 100, stmts: (4, 4), ..Default::default() };
        let some_branch = (0..10).any(|s| {
            random_nest(s, &p)
                .body
                .iter()
                .any(|i| matches!(i, datasync_loopir::ir::BodyItem::Branch(_)))
        });
        assert!(some_branch);
    }
}

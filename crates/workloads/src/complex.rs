//! A minimal complex-number type (kept in-repo to stay within the
//! offline dependency allowlist).

use std::ops::{Add, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// Creates `re + im*i`.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.4}+{:.4}i", self.re, self.im)
        } else {
            write!(f, "{:.4}{:.4}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Complex::new(1.0, 2.0)), "1.0000+2.0000i");
        assert_eq!(format!("{}", Complex::new(1.0, -2.0)), "1.0000-2.0000i");
    }
}

//! Example 1's four-point relaxation on real threads, three ways.
//!
//! `A[I,J] = A[I-1,J] + A[I,J-1]` for `I, J = 2..N` can run:
//!
//! * **sequentially** (the oracle);
//! * as **wavefronts** — all cells on an anti-diagonal in parallel, a
//!   global barrier between diagonals (Fig 5.1.c);
//! * **asynchronously pipelined** — the outer loop as a Doacross, the
//!   inner loop serial within each process, with `wait_PC(1, k)` /
//!   `mark_PC(k)` every `G` inner iterations (Fig 5.1.b/d).
//!
//! All three produce bit-identical grids (every cell is a deterministic
//! function of its two neighbours), which is the correctness check; the
//! paper's claim is that the pipelined method has the same number of
//! parallel steps but much better processor utilization.

use datasync_core::barrier::{DisseminationBarrier, PhaseBarrier};
use datasync_core::doacross::Doacross;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A shared `(n+1) x (n+1)` grid of `f64` cells (1-based indexing, row 1
/// and column 1 hold boundary values). Cells are atomics so workers can
/// share the grid in safe Rust; ordering is provided by the
/// synchronization under test, not by the cell operations.
#[derive(Debug)]
pub struct Grid {
    n: usize,
    cells: Vec<AtomicU64>,
}

impl Grid {
    /// Creates the grid with deterministic boundary values and zero
    /// interior.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "grid needs n >= 2");
        let g = Self { n, cells: (0..(n + 1) * (n + 1)).map(|_| AtomicU64::new(0)).collect() };
        for k in 1..=n {
            g.set(1, k, 1.0 / k as f64);
            g.set(k, 1, 1.0 + k as f64 / n as f64);
        }
        g
    }

    /// Grid size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Reads cell `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        f64::from_bits(self.cells[i * (self.n + 1) + j].load(Ordering::Relaxed))
    }

    /// Writes cell `(i, j)`.
    pub fn set(&self, i: usize, j: usize, v: f64) {
        self.cells[i * (self.n + 1) + j].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Snapshot of all cells (for equality checks).
    pub fn snapshot(&self) -> Vec<u64> {
        self.cells.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }
}

/// The relaxation step at one cell.
fn relax(grid: &Grid, i: usize, j: usize) {
    let v = grid.get(i - 1, j) + grid.get(i, j - 1);
    grid.set(i, j, v);
}

/// Sequential reference execution.
pub fn run_sequential(grid: &Grid) {
    for i in 2..=grid.n() {
        for j in 2..=grid.n() {
            relax(grid, i, j);
        }
    }
}

/// Wavefront execution: anti-diagonal `w = i + j` cells in parallel,
/// a dissemination barrier between consecutive wavefronts.
///
/// Returns the number of barrier episodes executed.
pub fn run_wavefront(grid: &Grid, threads: usize) -> usize {
    assert!(threads >= 1);
    let n = grid.n();
    let barrier = DisseminationBarrier::new(threads);
    let episodes = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for pid in 0..threads {
            let (grid, barrier, episodes) = (&*grid, &barrier, &episodes);
            s.spawn(move || {
                for w in 4..=2 * n {
                    let lo = 2.max(w.saturating_sub(n));
                    let hi = n.min(w - 2);
                    for (k, i) in (lo..=hi).enumerate() {
                        if k % threads == pid {
                            relax(grid, i, w - i);
                        }
                    }
                    barrier.wait(pid);
                    if pid == 0 {
                        episodes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    episodes.load(Ordering::Relaxed)
}

/// Statistics of a pipelined run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineStats {
    /// `wait_PC` operations issued (including immediately satisfied ones).
    pub waits: u64,
    /// `mark_PC`/`transfer_PC` operations issued.
    pub marks: u64,
}

/// Asynchronous pipelined execution: rows as a Doacross, `wait_PC(1, k)`
/// / `mark_PC(k)` around every group of `g` inner iterations
/// (Fig 5.1.b).
///
/// # Panics
///
/// Panics if `g == 0`.
pub fn run_pipelined(grid: &Grid, threads: usize, x: usize, g: usize) -> PipelineStats {
    assert!(g >= 1, "group size must be positive");
    let n = grid.n();
    let rows = (n - 1) as u64; // i = 2..=n, pid = i - 2
    let waits = AtomicU64::new(0);
    let marks = AtomicU64::new(0);
    Doacross::new(rows).threads(threads).pcs(x).run(|pid, ctx| {
        let i = pid as usize + 2;
        let mut step = 0u32;
        let mut j = 2usize;
        while j <= n {
            step += 1;
            waits.fetch_add(1, Ordering::Relaxed);
            ctx.wait(1, step);
            let end = n.min(j + g - 1);
            for jj in j..=end {
                relax(grid, i, jj);
            }
            marks.fetch_add(1, Ordering::Relaxed);
            ctx.mark(step);
            j = end + 1;
        }
        ctx.transfer();
    });
    PipelineStats { waits: waits.load(Ordering::Relaxed), marks: marks.load(Ordering::Relaxed) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(n: usize) -> Vec<u64> {
        let g = Grid::new(n);
        run_sequential(&g);
        g.snapshot()
    }

    #[test]
    fn wavefront_matches_sequential() {
        for n in [2, 3, 8, 33] {
            let expect = reference(n);
            let g = Grid::new(n);
            let episodes = run_wavefront(&g, 4);
            assert_eq!(g.snapshot(), expect, "n = {n}");
            assert_eq!(episodes, 2 * n - 3, "one barrier per wavefront");
        }
    }

    #[test]
    fn pipelined_matches_sequential() {
        for n in [2, 5, 32] {
            for g_size in [1, 3, 8, 100] {
                let expect = reference(n);
                let g = Grid::new(n);
                run_pipelined(&g, 4, 8, g_size);
                assert_eq!(g.snapshot(), expect, "n = {n}, G = {g_size}");
            }
        }
    }

    #[test]
    fn grouping_reduces_sync_ops() {
        let n = 64;
        let g1 = {
            let g = Grid::new(n);
            run_pipelined(&g, 4, 8, 1)
        };
        let g8 = {
            let g = Grid::new(n);
            run_pipelined(&g, 4, 8, 8)
        };
        assert!(g8.waits * 7 < g1.waits, "G=8 must issue ~8x fewer waits: {g1:?} vs {g8:?}");
    }

    #[test]
    fn pipelined_small_pool_correct() {
        let n = 24;
        let expect = reference(n);
        let g = Grid::new(n);
        run_pipelined(&g, 4, 2, 4);
        assert_eq!(g.snapshot(), expect);
    }

    #[test]
    fn grid_boundaries_initialized() {
        let g = Grid::new(8);
        assert!(g.get(1, 3) > 0.0);
        assert!(g.get(5, 1) > 0.0);
        assert_eq!(g.get(4, 4), 0.0);
    }
}

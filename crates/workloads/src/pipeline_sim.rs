//! Simulator workloads for Example 1: wavefront-with-barrier vs
//! asynchronous pipelining (Fig 5.1.c vs Fig 5.1.d).
//!
//! Both run the same `(n-1) x (n-1)` relaxation cells with the same cell
//! cost; only the synchronization structure differs. Cell `(i, j)` is
//! traced as `Label { pid: i, stmt: j }`, so `(j, j, 1)` arcs validate the
//! vertical dependence for either structure.

use datasync_sim::{pack_pc, Instr, Label, MachineConfig, Pred, Program, Workload};

/// The machine configuration the Example 1 experiments use: fast memory
/// (cells are register/cache resident on the machines the paper targets)
/// so the comparison isolates the synchronization *structure* instead of
/// saturating the data bus.
pub fn relaxation_config(procs: usize) -> MachineConfig {
    MachineConfig {
        processors: procs,
        data_bus_latency: 1,
        memory_latency: 1,
        ..MachineConfig::default()
    }
}

/// How many cycles one relaxation cell costs (excluding its three shared
/// accesses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellCost(pub u32);

/// Emits one relaxation cell: two reads, compute, one write, wrapped in
/// trace notes (`pid` = row index, `stmt` = column index).
fn emit_cell(prog: &mut Program, row: u64, col: u32, cost: u32) {
    prog.push(Instr::Note(Label { pid: row, stmt: col, start: true }));
    prog.push(Instr::Access { addr: (row - 1) << 32 | u64::from(col), write: false });
    prog.push(Instr::Access { addr: row << 32 | u64::from(col - 1), write: false });
    prog.push(Instr::Compute(cost));
    prog.push(Instr::Access { addr: row << 32 | u64::from(col), write: true });
    prog.push(Instr::Note(Label { pid: row, stmt: col, start: false }));
}

/// The wavefront structure: one barrier episode per anti-diagonal,
/// butterfly-style pairwise rounds over the dedicated sync bus (a
/// generous baseline — cheaper than a centralized counter).
///
/// Rows and columns are numbered `1..=n-1` (cell `(i,j)` of the paper is
/// `(i-1, j-1)` here); processors split each diagonal round-robin.
///
/// # Panics
///
/// Panics unless `procs` is a power of two.
pub fn wavefront_workload(n: usize, cost: CellCost, procs: usize) -> Workload {
    assert!(procs.is_power_of_two(), "butterfly barrier needs power-of-two processors");
    let rounds = procs.trailing_zeros();
    let m = n - 1; // cells per side
    let mut programs = Vec::new();
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); procs];
    // Diagonal d contains cells (i, j), i + j = d, 2 <= d <= 2m.
    for (episode, d) in (2..=2 * m).enumerate() {
        let lo = 1.max(d.saturating_sub(m));
        let hi = m.min(d - 1);
        for (p, assigned) in assignment.iter_mut().enumerate() {
            let mut prog = Program::new();
            for (k, i) in (lo..=hi).enumerate() {
                if k % procs == p {
                    emit_cell(&mut prog, i as u64, (d - i) as u32, cost.0);
                }
            }
            // Butterfly barrier rounds; counters are vars 0..procs.
            for r in 0..rounds {
                let round = episode as u64 * u64::from(rounds) + u64::from(r) + 1;
                prog.push(Instr::SyncSet { var: p, val: round });
                prog.push(Instr::SyncWait { var: p ^ (1 << r), pred: Pred::Geq(round) });
            }
            assigned.push(programs.len());
            programs.push(prog);
        }
    }
    Workload::static_assigned(programs, assignment)
}

/// The asynchronous pipelined structure: rows as a Doacross over `x`
/// process counters (basic primitives), `wait_PC(1, k)` / `set_PC(k)`
/// around every group of `g` columns.
///
/// Process counters are vars `0..x`; the caller must preset
/// `PC[i] = pack_pc(i, 0)` — use [`pipelined_presets`].
///
/// # Panics
///
/// Panics if `g == 0` or `x == 0`.
pub fn pipelined_workload(n: usize, cost: CellCost, g: usize, x: usize) -> Workload {
    assert!(g >= 1, "group size must be positive");
    assert!(x >= 1, "need at least one process counter");
    let m = n - 1;
    let mut programs = Vec::with_capacity(m);
    for row in 1..=m as u64 {
        let pid = row - 1;
        let own = (pid % x as u64) as usize;
        let mut prog = Program::new();
        // get_PC (basic primitives).
        prog.push(Instr::SyncWait { var: own, pred: Pred::Geq(pack_pc(pid, 0)) });
        let mut col = 1usize;
        let mut step = 0u32;
        while col <= m {
            step += 1;
            if pid > 0 {
                let target = pid - 1;
                prog.push(Instr::SyncWait {
                    var: (target % x as u64) as usize,
                    pred: Pred::Geq(pack_pc(target, step)),
                });
            }
            let end = m.min(col + g - 1);
            for c in col..=end {
                emit_cell(&mut prog, row, c as u32, cost.0);
            }
            let last = end == m;
            prog.push(Instr::SyncSet {
                var: own,
                val: if last { pack_pc(pid + x as u64, 0) } else { pack_pc(pid, step) },
            });
            col = end + 1;
        }
        programs.push(prog);
    }
    Workload::dynamic(programs)
}

/// The pipelined structure realized with the **statement-oriented**
/// scheme and `l` statement counters (Example 1's criticism): the paper
/// counts `N-1` synchronization points between consecutive rows, so
/// `N-1` SCs are needed for maximum parallelism. With only `l` SCs,
/// column `k` maps to `SC[k mod l]`, whose sequential `Advance` handoff
/// orders all of its instances totally — small `l` strangles the
/// pipeline.
///
/// # Panics
///
/// Panics if `l == 0` or `l` does not divide the number of columns.
pub fn pipelined_sc_workload(n: usize, cost: CellCost, l: usize) -> Workload {
    let m = n - 1;
    assert!(l >= 1, "need at least one statement counter");
    assert!(m.is_multiple_of(l), "SC count must divide the column count for this model");
    let per_sc = (m / l) as u64; // instances of each SC per row
    let mut programs = Vec::with_capacity(m);
    for row in 1..=m as u64 {
        let i = row - 1; // 0-based row
        let mut prog = Program::new();
        for col in 1..=m {
            let k = col - 1; // 0-based column
            let sc = k % l;
            let ordinal = i * per_sc + (k / l) as u64;
            if i > 0 {
                // Await: row i-1 advanced this column's SC instance.
                prog.push(Instr::SyncWait {
                    var: sc,
                    pred: Pred::Geq((i - 1) * per_sc + (k / l) as u64 + 1),
                });
            }
            emit_cell(&mut prog, row, col as u32, cost.0);
            // Advance: strictly sequential handoff of this SC.
            prog.push(Instr::SyncWait { var: sc, pred: Pred::Eq(ordinal) });
            prog.push(Instr::SyncSet { var: sc, val: ordinal + 1 });
        }
        programs.push(prog);
    }
    Workload::dynamic(programs)
}

/// Initial PC values for [`pipelined_workload`].
pub fn pipelined_presets(n: usize, x: usize) -> Vec<(usize, u64)> {
    (0..x.min(n - 1)).map(|i| (i, pack_pc(i as u64, 0))).collect()
}

/// Validation arcs for either structure: each cell depends on the cell
/// above (`(j, j, 1)` for every column `j`). The horizontal dependence is
/// program order within a row.
pub fn relaxation_arcs(n: usize) -> Vec<(u32, u32, i64)> {
    (1..=(n - 1) as u32).map(|j| (j, j, 1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasync_sim::{run, Machine};

    fn check_wavefront(n: usize, procs: usize) -> datasync_sim::RunStats {
        let w = wavefront_workload(n, CellCost(24), procs);
        let out = run(&relaxation_config(procs), &w).expect("sim failed");
        let v = out.trace.validate_order(&relaxation_arcs(n));
        assert!(v.is_empty(), "violations: {v:?}");
        // every cell executed exactly once
        let starts = out.trace.events().iter().filter(|e| e.label.start).count();
        assert_eq!(starts, (n - 1) * (n - 1));
        out.stats
    }

    fn check_pipelined(n: usize, procs: usize, g: usize, x: usize) -> datasync_sim::RunStats {
        let w = pipelined_workload(n, CellCost(24), g, x);
        let config = relaxation_config(procs);
        let mut m = Machine::new(&config, &w);
        for (var, val) in pipelined_presets(n, x) {
            m.preset_sync(var, val);
        }
        let out = m.run_to_completion().expect("sim failed");
        let v = out.trace.validate_order(&relaxation_arcs(n));
        assert!(v.is_empty(), "violations: {v:?}");
        let starts = out.trace.events().iter().filter(|e| e.label.start).count();
        assert_eq!(starts, (n - 1) * (n - 1));
        out.stats
    }

    #[test]
    fn wavefront_correct() {
        check_wavefront(9, 4);
        check_wavefront(5, 2);
    }

    #[test]
    fn pipelined_correct() {
        check_pipelined(9, 4, 1, 8);
        check_pipelined(9, 4, 3, 8);
        check_pipelined(5, 2, 2, 2);
    }

    fn check_pipelined_sc(n: usize, procs: usize, l: usize) -> datasync_sim::RunStats {
        let w = pipelined_sc_workload(n, CellCost(24), l);
        let out = run(&relaxation_config(procs), &w).expect("sim failed");
        let v = out.trace.validate_order(&relaxation_arcs(n));
        assert!(v.is_empty(), "violations: {v:?}");
        out.stats
    }

    #[test]
    fn sc_pipeline_needs_many_counters() {
        // l = m (the paper's N-1) pipelines; l = 1 nearly serializes.
        let full = check_pipelined_sc(17, 4, 16);
        let one = check_pipelined_sc(17, 4, 1);
        assert!(
            one.makespan > full.makespan * 2,
            "1 SC ({}) must be far slower than 16 SCs ({})",
            one.makespan,
            full.makespan
        );
    }

    #[test]
    fn pipelined_beats_wavefront_utilization() {
        // The paper's Fig 5.1 claim: same parallel steps, better
        // efficiency and utilization for the asynchronous pipeline.
        let wf = check_wavefront(17, 4);
        let pl = check_pipelined(17, 4, 1, 8);
        assert!(
            pl.utilization() > wf.utilization(),
            "pipelined utilization {:.3} must beat wavefront {:.3}",
            pl.utilization(),
            wf.utilization()
        );
        assert!(
            pl.makespan < wf.makespan,
            "pipelined {} vs wavefront {}",
            pl.makespan,
            wf.makespan
        );
    }

    #[test]
    fn grouping_trades_sync_for_delay() {
        let g1 = check_pipelined(17, 4, 1, 8);
        let g4 = check_pipelined(17, 4, 4, 8);
        assert!(
            g4.sync_broadcasts < g1.sync_broadcasts,
            "G=4 broadcasts {} must be below G=1 {}",
            g4.sync_broadcasts,
            g1.sync_broadcasts
        );
    }
}

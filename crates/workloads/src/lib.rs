//! Workloads for the data-synchronization reproduction.
//!
//! The paper's Section 5 applications, realized both on real threads
//! (via `datasync-core`) and as simulator programs (via `datasync-sim`):
//!
//! * [`relaxation`] — Example 1's four-point relaxation: sequential,
//!   wavefront-with-barrier, and asynchronously pipelined with group
//!   size `G`, on real threads;
//! * [`pipeline_sim`] — the same comparison as simulator workloads;
//! * [`fft`] — Example 5's parallel FFT with pairwise or global-barrier
//!   phase synchronization, over our own [`complex::Complex`];
//! * [`pde`] — a 1-D diffusion solver with neighbour-only sweep
//!   synchronization (the paper's second Example 5 application);
//! * [`barrier_sim`] — Example 4's butterfly vs counter barrier on the
//!   simulator (hot-spot measurement);
//! * [`synthetic`] — random Doacross loops for property-based testing.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod barrier_sim;
pub mod complex;
pub mod fft;
pub mod pde;
pub mod pipeline_sim;
pub mod relaxation;
pub mod synthetic;

pub use complex::Complex;
pub use relaxation::Grid;
pub use synthetic::{random_nest, SynthParams};

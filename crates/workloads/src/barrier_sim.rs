//! Simulator workloads for Example 4: butterfly vs counter barrier.
//!
//! Each of `P` processors runs `episodes` rounds of `Compute(cost)`
//! followed by a barrier. The centralized counter barrier arrives with an
//! atomic fetch-and-add and spins on the shared counter — on the
//! shared-memory transport every spin poll is a bus transaction (the
//! hot-spot the paper cites from Brooks \[6\]). The butterfly barrier uses
//! only single-writer counters and needs no atomic operation.

use datasync_sim::{Instr, Label, Pred, Program, Workload};

/// Barrier implementation under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierKind {
    /// Centralized counter: `fetch&add` on arrival, spin until the
    /// arrival count reaches `P * episode`.
    Counter,
    /// Butterfly: `log2 P` pairwise rounds on per-processor counters.
    Butterfly,
}

impl BarrierKind {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            BarrierKind::Counter => "counter",
            BarrierKind::Butterfly => "butterfly",
        }
    }
}

/// Builds the barrier stress workload.
///
/// `compute(p, e)` gives processor `p`'s compute cost in episode `e`
/// (skew it to model the "waiting for the last processor" effect).
/// Sync variables: counter barrier uses var 0; butterfly uses vars
/// `0..P`. Episode `e` of processor `p` is traced as
/// `Label { pid: e, stmt: p }` at the moment the barrier is passed.
///
/// # Panics
///
/// Panics if `kind` is [`BarrierKind::Butterfly`] and `procs` is not a
/// power of two.
pub fn barrier_workload(
    procs: usize,
    episodes: usize,
    kind: BarrierKind,
    compute: impl Fn(usize, usize) -> u32,
) -> Workload {
    let mut programs = Vec::with_capacity(procs);
    match kind {
        BarrierKind::Counter => {
            for p in 0..procs {
                let mut prog = Program::new();
                for e in 0..episodes {
                    prog.push(Instr::Compute(compute(p, e)));
                    prog.push(Instr::SyncRmw { var: 0 });
                    prog.push(Instr::SyncWait {
                        var: 0,
                        pred: Pred::Geq((procs * (e + 1)) as u64),
                    });
                    prog.push(Instr::Note(Label { pid: e as u64, stmt: p as u32, start: false }));
                }
                programs.push(prog);
            }
        }
        BarrierKind::Butterfly => {
            assert!(procs.is_power_of_two(), "butterfly needs power-of-two processors");
            let rounds = procs.trailing_zeros();
            for p in 0..procs {
                let mut prog = Program::new();
                for e in 0..episodes {
                    prog.push(Instr::Compute(compute(p, e)));
                    for r in 0..rounds {
                        let round = (e as u64) * u64::from(rounds) + u64::from(r) + 1;
                        prog.push(Instr::SyncSet { var: p, val: round });
                        prog.push(Instr::SyncWait { var: p ^ (1 << r), pred: Pred::Geq(round) });
                    }
                    prog.push(Instr::Note(Label { pid: e as u64, stmt: p as u32, start: false }));
                }
                programs.push(prog);
            }
        }
    }
    Workload::static_assigned(programs, (0..procs).map(|p| vec![p]).collect())
}

/// Example 5's pairwise phase synchronization: after phase `e`, processor
/// `p` marks its counter and waits only for partner `p xor 2^(e mod log2 P)`
/// — no global barrier. Sync variables `0..P`; trace labels as in
/// [`barrier_workload`].
///
/// # Panics
///
/// Panics unless `procs` is a power of two.
pub fn pairwise_workload(
    procs: usize,
    phases: usize,
    compute: impl Fn(usize, usize) -> u32,
) -> Workload {
    assert!(procs.is_power_of_two(), "pairwise sync needs power-of-two processors");
    let log_p = procs.trailing_zeros() as usize;
    let mut programs = Vec::with_capacity(procs);
    for p in 0..procs {
        let mut prog = Program::new();
        for e in 0..phases {
            prog.push(Instr::Compute(compute(p, e)));
            let step = e as u64 + 1;
            prog.push(Instr::SyncSet { var: p, val: step });
            if log_p > 0 {
                let partner = p ^ (1 << (e % log_p));
                prog.push(Instr::SyncWait { var: partner, pred: Pred::Geq(step) });
            }
            prog.push(Instr::Note(Label { pid: e as u64, stmt: p as u32, start: false }));
        }
        programs.push(prog);
    }
    Workload::static_assigned(programs, (0..procs).map(|p| vec![p]).collect())
}

/// Checks a pairwise-phase trace: each processor's phase `e` must pass
/// only after its phase-`e` *partner* completed phase `e-1` (the local
/// obligation Example 5 actually needs).
pub fn pairwise_violations(trace: &datasync_sim::Trace, procs: usize, phases: usize) -> usize {
    let log_p = procs.trailing_zeros() as usize;
    if log_p == 0 {
        return 0;
    }
    let mut bad = 0;
    for e in 1..phases {
        for p in 0..procs {
            let partner = p ^ (1 << ((e - 1) % log_p));
            if let (Some(mine), Some(theirs)) =
                (trace.end_of(p as u32, e as u64), trace.end_of(partner as u32, e as u64 - 1))
            {
                if mine < theirs {
                    bad += 1;
                }
            }
        }
    }
    bad
}

/// Checks a barrier trace: within each episode, no processor may pass the
/// barrier before every processor's *previous* episode completed — i.e.
/// episode `e` passes strictly after episode `e-1` for every pair.
pub fn barrier_violations(trace: &datasync_sim::Trace, procs: usize, episodes: usize) -> usize {
    let mut bad = 0;
    for e in 1..episodes {
        for p in 0..procs {
            let this = trace.end_of(p as u32, e as u64);
            for q in 0..procs {
                let prev = trace.end_of(q as u32, e as u64 - 1);
                if let (Some(t), Some(pv)) = (this, prev) {
                    if t < pv {
                        bad += 1;
                    }
                }
            }
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasync_sim::{run, MachineConfig, SyncTransport};

    fn check(kind: BarrierKind, transport: SyncTransport, procs: usize) -> datasync_sim::RunStats {
        let episodes = 6;
        let w = barrier_workload(procs, episodes, kind, |p, e| 10 + ((p + e) % 5) as u32 * 4);
        let out = run(&MachineConfig::with_processors(procs).transport(transport), &w)
            .expect("sim failed");
        assert_eq!(barrier_violations(&out.trace, procs, episodes), 0, "{}", kind.name());
        out.stats
    }

    #[test]
    fn counter_barrier_correct_on_both_transports() {
        check(BarrierKind::Counter, SyncTransport::SharedMemory, 8);
        check(BarrierKind::Counter, SyncTransport::DedicatedBus, 8);
    }

    #[test]
    fn butterfly_barrier_correct_on_both_transports() {
        check(BarrierKind::Butterfly, SyncTransport::SharedMemory, 8);
        check(BarrierKind::Butterfly, SyncTransport::DedicatedBus, 8);
    }

    #[test]
    fn counter_hot_spot_generates_poll_traffic() {
        let counter = check(BarrierKind::Counter, SyncTransport::SharedMemory, 16);
        let butterfly = check(BarrierKind::Butterfly, SyncTransport::DedicatedBus, 16);
        assert!(counter.spin_polls > 0);
        assert_eq!(butterfly.spin_polls, 0);
        assert!(
            butterfly.makespan < counter.makespan,
            "butterfly {} must beat the hot-spot counter {}",
            butterfly.makespan,
            counter.makespan
        );
    }

    #[test]
    fn works_with_two_processors() {
        check(BarrierKind::Butterfly, SyncTransport::DedicatedBus, 2);
        check(BarrierKind::Counter, SyncTransport::SharedMemory, 2);
    }

    #[test]
    fn pairwise_phases_locally_ordered_and_faster_under_skew() {
        let procs = 8;
        let phases = 8;
        // Processor 0 is slow in every phase: a global barrier drags
        // everyone down; pairwise only delays 0's partners transitively.
        let skew = |p: usize, _e: usize| if p == 0 { 120u32 } else { 10 };
        let pw = pairwise_workload(procs, phases, skew);
        let out = run(&MachineConfig::with_processors(procs), &pw).expect("sim failed");
        assert_eq!(pairwise_violations(&out.trace, procs, phases), 0);
        let bf = barrier_workload(procs, phases, BarrierKind::Butterfly, skew);
        let out_bf = run(&MachineConfig::with_processors(procs), &bf).expect("sim failed");
        assert!(
            out.stats.makespan <= out_bf.stats.makespan,
            "pairwise {} should not lose to global butterfly {}",
            out.stats.makespan,
            out_bf.stats.makespan
        );
    }
}

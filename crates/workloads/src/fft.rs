//! A real parallel FFT — the workload of Example 5.
//!
//! Radix-2 decimation-in-time FFT over `n` points, partitioned into one
//! contiguous chunk per worker. After bit-reversal, stage `s` pairs
//! element `i` with `i xor 2^(s-1)`; once the pair distance reaches the
//! chunk size, the data a worker needs was produced by exactly one
//! partner — worker `pid xor 2^(s-1)/chunk` — which is why the paper's
//! pairwise `mark_PC`/`wait_PC` synchronization suffices and no global
//! barrier is needed.
//!
//! Buffers are ping-ponged between stages (stage `s` reads buffer
//! `s-1 mod 2`, writes `s mod 2`), so cross-worker reads only touch data
//! the phase synchronization has already published. Values are stored in
//! atomics (relaxed loads/stores; the ordering comes from the phase
//! synchronization's acquire/release edges), keeping the implementation
//! in safe Rust.

use crate::complex::Complex;
use datasync_core::barrier::{
    ButterflyBarrier, CounterBarrier, DisseminationBarrier, PhaseBarrier,
};
use datasync_core::pad::CachePadded;
use datasync_core::phased::PhaseSync;
use datasync_core::wait::WaitStrategy;
use std::sync::atomic::{AtomicU64, Ordering};

/// A shared buffer of complex values readable and writable across
/// workers (bit-cast `f64` atomics).
#[derive(Debug)]
struct SharedBuf {
    re: Vec<AtomicU64>,
    im: Vec<AtomicU64>,
}

impl SharedBuf {
    fn new(n: usize) -> Self {
        Self {
            re: (0..n).map(|_| AtomicU64::new(0)).collect(),
            im: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn store(&self, i: usize, v: Complex) {
        self.re[i].store(v.re.to_bits(), Ordering::Relaxed);
        self.im[i].store(v.im.to_bits(), Ordering::Relaxed);
    }

    fn load(&self, i: usize) -> Complex {
        Complex::new(
            f64::from_bits(self.re[i].load(Ordering::Relaxed)),
            f64::from_bits(self.im[i].load(Ordering::Relaxed)),
        )
    }
}

/// Bit-reversal permutation index.
fn bit_reverse(i: usize, bits: u32) -> usize {
    i.reverse_bits() >> (usize::BITS - bits)
}

/// Computes the FFT of `input` in parallel.
///
/// `workers` workers run `log2 n` stages; between stages they synchronize
/// with the given [`PhaseSync`] policy — [`PhaseSync::Pairwise`] is the
/// paper's Example 5, the global policies are the `\[7\]` baseline.
///
/// # Panics
///
/// Panics unless `input.len()` and `workers` are powers of two with
/// `workers <= input.len()`.
pub fn parallel_fft(input: &[Complex], workers: usize, sync: PhaseSync) -> Vec<Complex> {
    let n = input.len();
    assert!(n.is_power_of_two() && n >= 1, "FFT size must be a power of two");
    assert!(workers.is_power_of_two() && workers >= 1, "worker count must be a power of two");
    assert!(workers <= n, "more workers than points");
    let bits = n.trailing_zeros();
    let chunk = n / workers;

    let bufs = [SharedBuf::new(n), SharedBuf::new(n)];
    // Bit-reversal permutation into buffer 0 (embarrassingly parallel;
    // done up front).
    for (i, &v) in input.iter().enumerate() {
        bufs[0].store(bit_reverse(i, bits), v);
    }

    let stages = bits as usize;
    // The cross-chunk partner of stage `k` (0-based): stage k pairs
    // element i with i ^ 2^k; once 2^k >= chunk that element lives in
    // worker pid ^ (2^k / chunk).
    let cross_partner = |pid: usize, k: usize| -> Option<usize> {
        let half = 1usize << k;
        if half >= chunk {
            Some(pid ^ (half / chunk))
        } else {
            None
        }
    };

    let barrier: Option<Box<dyn PhaseBarrier>> = match sync {
        PhaseSync::GlobalCounter => Some(Box::new(CounterBarrier::new(workers))),
        PhaseSync::GlobalButterfly => Some(Box::new(ButterflyBarrier::new(workers))),
        PhaseSync::GlobalDissemination => Some(Box::new(DisseminationBarrier::new(workers))),
        PhaseSync::Pairwise => None,
    };
    // Per-worker completed-stage counters for the pairwise policy
    // (Example 5's PCs: mark after each stage, wait only for the workers
    // whose data the next stage touches).
    let counters: Vec<CachePadded<AtomicU64>> =
        (0..workers).map(|_| CachePadded::new(AtomicU64::new(0))).collect();
    let strategy = WaitStrategy::default();

    std::thread::scope(|scope| {
        for pid in 0..workers {
            let (bufs, barrier, counters) = (&bufs, &barrier, &counters);
            scope.spawn(move || {
                let base = pid * chunk;
                for stage in 0..stages {
                    if let Some(b) = barrier {
                        if stage > 0 {
                            b.wait(pid);
                        }
                    } else if stage > 0 {
                        let done = stage as u64;
                        // RAW: the worker whose stage-(k-1) output this
                        // stage reads must have completed it.
                        if let Some(p) = cross_partner(pid, stage) {
                            let cell = &counters[p];
                            strategy.wait_until(|| cell.load(Ordering::Acquire) >= done);
                        }
                        // WAR: the worker that read our previous output
                        // during stage k-1 must be done with it before we
                        // overwrite the ping-pong buffer. (The paper's
                        // Example 5 elides this: it assumes in-place
                        // exchange with implicit buffering.)
                        if let Some(p) = cross_partner(pid, stage - 1) {
                            let cell = &counters[p];
                            strategy.wait_until(|| cell.load(Ordering::Acquire) >= done);
                        }
                    }
                    let s = stage + 1;
                    let half = 1usize << (s - 1);
                    let m = half * 2;
                    let src = &bufs[stage % 2];
                    let dst = &bufs[(stage + 1) % 2];
                    for i in base..base + chunk {
                        let pos = i & (half - 1);
                        let angle = -2.0 * std::f64::consts::PI * pos as f64 / m as f64;
                        let w = Complex::new(angle.cos(), angle.sin());
                        let j = i ^ half;
                        let out = if i & half == 0 {
                            src.load(i) + w * src.load(j)
                        } else {
                            src.load(j) - w * src.load(i)
                        };
                        dst.store(i, out);
                    }
                    counters[pid].store(stage as u64 + 1, Ordering::Release);
                }
            });
        }
    });

    let final_buf = &bufs[stages % 2];
    (0..n).map(|i| final_buf.load(i)).collect()
}

/// Sequential reference FFT (same algorithm, one thread).
pub fn sequential_fft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    assert!(n.is_power_of_two(), "FFT size must be a power of two");
    let bits = n.trailing_zeros();
    let mut buf: Vec<Complex> = (0..n).map(|i| input[bit_reverse(i, bits)]).collect();
    let mut next = vec![Complex::ZERO; n];
    for s in 1..=bits {
        let half = 1usize << (s - 1);
        let m = half * 2;
        for i in 0..n {
            let pos = i & (half - 1);
            let angle = -2.0 * std::f64::consts::PI * pos as f64 / m as f64;
            let w = Complex::new(angle.cos(), angle.sin());
            let j = i ^ half;
            next[i] = if i & half == 0 { buf[i] + w * buf[j] } else { buf[j] - w * buf[i] };
        }
        std::mem::swap(&mut buf, &mut next);
    }
    buf
}

/// Naive `O(n^2)` DFT for verification.
pub fn naive_dft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let angle = -2.0 * std::f64::consts::PI * (k * j % n) as f64 / n as f64;
                acc = acc + x * Complex::new(angle.cos(), angle.sin());
            }
            acc
        })
        .collect()
}

/// Maximum absolute component difference between two spectra.
pub fn max_error(a: &[Complex], b: &[Complex]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x.re - y.re).abs().max((x.im - y.im).abs()))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                Complex::new(
                    (2.0 * std::f64::consts::PI * 3.0 * t).sin()
                        + 0.5 * (2.0 * std::f64::consts::PI * 7.0 * t).cos(),
                    0.1 * t,
                )
            })
            .collect()
    }

    #[test]
    fn bit_reverse_basics() {
        assert_eq!(bit_reverse(0b001, 3), 0b100);
        assert_eq!(bit_reverse(0b110, 3), 0b011);
        assert_eq!(bit_reverse(0, 4), 0);
    }

    #[test]
    fn sequential_fft_matches_naive_dft() {
        let x = test_signal(64);
        let err = max_error(&sequential_fft(&x), &naive_dft(&x));
        assert!(err < 1e-9, "error {err}");
    }

    #[test]
    fn parallel_pairwise_matches_sequential_exactly() {
        let x = test_signal(256);
        let seq = sequential_fft(&x);
        for workers in [1, 2, 4, 8] {
            let par = parallel_fft(&x, workers, PhaseSync::Pairwise);
            assert_eq!(max_error(&par, &seq), 0.0, "workers = {workers} must be bit-identical");
        }
    }

    #[test]
    fn parallel_global_barriers_match_too() {
        let x = test_signal(128);
        let seq = sequential_fft(&x);
        for sync in
            [PhaseSync::GlobalCounter, PhaseSync::GlobalButterfly, PhaseSync::GlobalDissemination]
        {
            let par = parallel_fft(&x, 4, sync);
            assert_eq!(max_error(&par, &seq), 0.0, "{}", sync.name());
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 32];
        x[0] = Complex::new(1.0, 0.0);
        let spec = parallel_fft(&x, 4, PhaseSync::Pairwise);
        for v in spec {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = parallel_fft(&[Complex::ZERO; 12], 2, PhaseSync::Pairwise);
    }
}

//! Neighbor-synchronized PDE iteration — the paper's second Example 5
//! application: "the discretization method for solving partial
//! differential equations \[19\], in which a process only needs to
//! synchronize with processes computing its neighboring regions."
//!
//! A 1-D heat (diffusion) equation is discretized over `n` points and
//! iterated with an explicit Jacobi scheme. The domain is cut into one
//! strip per worker; after each sweep a worker needs only its two
//! neighbours' strips from the *previous* sweep. The process-oriented
//! realization gives each worker a counter: `mark(sweep)` after the
//! sweep, then wait for `left` and `right` to reach the same sweep — no
//! global barrier. Double buffering needs the same WAR guard as the FFT
//! (a neighbour may lag one sweep), which the neighbour wait already
//! provides: waiting for both neighbours at sweep `s` implies neither
//! still reads buffers from sweep `s-1`.

use datasync_core::barrier::{DisseminationBarrier, PhaseBarrier};
use datasync_core::pad::CachePadded;
use datasync_core::wait::WaitStrategy;
use std::sync::atomic::{AtomicU64, Ordering};

/// How sweeps synchronize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PdeSync {
    /// Wait only for the two neighbouring strips (process counters).
    Neighbors,
    /// A global dissemination barrier after every sweep.
    GlobalBarrier,
}

impl PdeSync {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PdeSync::Neighbors => "neighbors",
            PdeSync::GlobalBarrier => "global-barrier",
        }
    }
}

/// A shared `f64` field (bit-cast atomics; ordering comes from the sweep
/// synchronization).
#[derive(Debug)]
struct Field {
    cells: Vec<AtomicU64>,
}

impl Field {
    fn new(n: usize) -> Self {
        Self { cells: (0..n).map(|_| AtomicU64::new(0)).collect() }
    }
    fn get(&self, i: usize) -> f64 {
        f64::from_bits(self.cells[i].load(Ordering::Relaxed))
    }
    fn set(&self, i: usize, v: f64) {
        self.cells[i].store(v.to_bits(), Ordering::Relaxed);
    }
}

/// Initial condition: a hot spike in the middle, cold boundaries.
fn init(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| if i == n / 2 { 100.0 } else { (i as f64 * 0.1).sin().abs() })
        .collect()
}

/// One Jacobi update.
fn step(prev_left: f64, prev_mid: f64, prev_right: f64, alpha: f64) -> f64 {
    prev_mid + alpha * (prev_left - 2.0 * prev_mid + prev_right)
}

/// Sequential reference solver.
pub fn solve_sequential(n: usize, sweeps: usize, alpha: f64) -> Vec<f64> {
    let mut cur = init(n);
    let mut next = vec![0.0; n];
    for _ in 0..sweeps {
        next[0] = cur[0];
        next[n - 1] = cur[n - 1];
        for i in 1..n - 1 {
            next[i] = step(cur[i - 1], cur[i], cur[i + 1], alpha);
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// Parallel solver: `workers` strips, synchronized per [`PdeSync`].
///
/// Returns the final field; bit-identical to [`solve_sequential`] for
/// every policy.
///
/// # Panics
///
/// Panics if `workers == 0` or `n < 2 * workers`.
pub fn solve_parallel(
    n: usize,
    sweeps: usize,
    alpha: f64,
    workers: usize,
    sync: PdeSync,
) -> Vec<f64> {
    assert!(workers >= 1, "need at least one worker");
    assert!(n >= 2 * workers, "strips too small");
    let bufs = [Field::new(n), Field::new(n)];
    for (i, v) in init(n).into_iter().enumerate() {
        bufs[0].set(i, v);
    }
    let counters: Vec<CachePadded<AtomicU64>> =
        (0..workers).map(|_| CachePadded::new(AtomicU64::new(0))).collect();
    let barrier = DisseminationBarrier::new(workers);
    let strategy = WaitStrategy::default();

    // Strip bounds (first/last point per worker).
    let bounds: Vec<(usize, usize)> = (0..workers)
        .map(|w| {
            let lo = w * n / workers;
            let hi = (w + 1) * n / workers;
            (lo, hi)
        })
        .collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let (bufs, counters, barrier, bounds) = (&bufs, &counters, &barrier, &bounds);
            scope.spawn(move || {
                let (lo, hi) = bounds[w];
                for sweep in 0..sweeps {
                    let src = &bufs[sweep % 2];
                    let dst = &bufs[(sweep + 1) % 2];
                    for i in lo..hi {
                        let v = if i == 0 || i == n - 1 {
                            src.get(i)
                        } else {
                            step(src.get(i - 1), src.get(i), src.get(i + 1), alpha)
                        };
                        dst.set(i, v);
                    }
                    match sync {
                        PdeSync::GlobalBarrier => barrier.wait(w),
                        PdeSync::Neighbors => {
                            let done = sweep as u64 + 1;
                            counters[w].store(done, Ordering::Release);
                            // Wait for both neighbours: their sweep data
                            // is what the next sweep reads at the strip
                            // edges, and their progress guarantees they no
                            // longer read the buffer we overwrite next.
                            if w > 0 {
                                let cell = &counters[w - 1];
                                strategy.wait_until(|| cell.load(Ordering::Acquire) >= done);
                            }
                            if w + 1 < workers {
                                let cell = &counters[w + 1];
                                strategy.wait_until(|| cell.load(Ordering::Acquire) >= done);
                            }
                        }
                    }
                }
            });
        }
    });

    let final_buf = &bufs[sweeps % 2];
    (0..n).map(|i| final_buf.get(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let (n, sweeps, alpha) = (257, 40, 0.24);
        let reference = solve_sequential(n, sweeps, alpha);
        for workers in [1usize, 2, 3, 4, 7] {
            for sync in [PdeSync::Neighbors, PdeSync::GlobalBarrier] {
                let got = solve_parallel(n, sweeps, alpha, workers, sync);
                assert_eq!(got, reference, "{} w={workers}", sync.name());
            }
        }
    }

    #[test]
    fn diffusion_spreads_and_conserves_shape() {
        let out = solve_sequential(101, 200, 0.25);
        // The spike decays but stays the maximum.
        let max = out.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max < 100.0);
        assert!((out[50] - max).abs() < 1e-12);
    }

    #[test]
    fn zero_sweeps_returns_initial_condition() {
        let got = solve_parallel(64, 0, 0.2, 4, PdeSync::Neighbors);
        assert_eq!(got, super::init(64));
    }

    #[test]
    #[should_panic(expected = "strips too small")]
    fn tiny_domain_rejected() {
        let _ = solve_parallel(4, 1, 0.2, 4, PdeSync::Neighbors);
    }
}

//! End-to-end drills against a live in-process server: the quarantine
//! circuit breaker and hostile-input handling — the behaviors that span
//! runner + store + server and so can't be pinned by any one unit test.

use datasync_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("datasync-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn config(tag: &str) -> ServeConfig {
    ServeConfig { addr: "127.0.0.1:0".into(), state_dir: temp_dir(tag), ..ServeConfig::default() }
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head =
        format!("{method} {path} HTTP/1.1\r\nHost: e2e\r\nContent-Length: {}\r\n\r\n", body.len());
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

fn body_of(response: &str) -> &str {
    response.split("\r\n\r\n").nth(1).unwrap_or("")
}

fn stat_u64(stats_body: &str, key: &str) -> u64 {
    stats_body
        .split(&format!("\"{key}\":"))
        .nth(1)
        .and_then(|rest| {
            rest.chars().take_while(char::is_ascii_digit).collect::<String>().parse().ok()
        })
        .unwrap_or(u64::MAX)
}

#[test]
fn quarantined_cells_trip_the_circuit_breaker_and_leave_reproducers() {
    let cfg = config("quarantine");
    let dir = cfg.state_dir.clone();
    let handle = Server::spawn(cfg).expect("spawn");
    // A 1-cycle deadline can never complete: both attempts wedge, the
    // cells poison, and each writes a chaos reproducer.
    let body = r#"{"iterations": [6, 9], "deadline_cycles": 1, "seed": 5}"#;
    let first = request(handle.addr(), "POST", "/sweep", body);
    assert!(first.starts_with("HTTP/1.1 200"), "{first}");
    let lines: Vec<&str> = body_of(&first).lines().collect();
    assert_eq!(lines.len(), 3, "2 cells + summary:\n{first}");
    for line in &lines[..2] {
        assert!(line.contains("\"status\":\"quarantined\""), "{line}");
        assert!(line.contains("\"attempts\":2"), "two strikes before poison: {line}");
        assert!(line.contains("\"cached\":false"), "{line}");
    }
    assert!(lines[2].contains("\"quarantined\":2"), "{}", lines[2]);
    let quarantine = dir.join("quarantine");
    let reproducers: Vec<_> = std::fs::read_dir(&quarantine)
        .expect("quarantine dir exists")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
        .collect();
    assert_eq!(reproducers.len(), 2, "one reproducer per poisoned cell");
    for entry in &reproducers {
        let doc = std::fs::read_to_string(entry.path()).unwrap();
        assert!(doc.starts_with("{\n  \"chaos_case\": 1,"), "{doc}");
    }

    // The circuit breaker: resubmitting the same grid must not re-run
    // the poisoned cells — they come back as cached records, and the
    // stats count the skips.
    let second = request(handle.addr(), "POST", "/sweep", body);
    let lines2: Vec<&str> = body_of(&second).lines().collect();
    assert!(lines2[..2].iter().all(|l| l.contains("\"cached\":true")), "{second}");
    assert!(lines2[2].contains("\"computed\":0"), "{}", lines2[2]);
    let stats = body_of(&request(handle.addr(), "GET", "/stats", "")).to_string();
    assert_eq!(stat_u64(&stats, "poison_skips"), 2, "{stats}");
    assert_eq!(stat_u64(&stats, "poisoned"), 2, "{stats}");

    // The breaker holds across a restart: the journal replays the
    // poisoned records into the fresh cache.
    let summary = handle.stop();
    assert_eq!(summary.cells_quarantined, 2);
    let respawn_cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        state_dir: dir.clone(),
        ..ServeConfig::default()
    };
    let handle = Server::spawn(respawn_cfg).expect("respawn");
    let third = request(handle.addr(), "POST", "/sweep", body);
    assert!(body_of(&third).lines().last().unwrap().contains("\"computed\":0"), "{third}");
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hostile_inputs_get_clean_errors_and_the_server_stays_up() {
    let cfg = config("hostile");
    let dir = cfg.state_dir.clone();
    let handle = Server::spawn(cfg).expect("spawn");
    let addr = handle.addr();

    // Raw non-HTTP garbage.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"garbage that is not http\r\n\r\n").unwrap();
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    assert!(out.starts_with("HTTP/1.1 400"), "{out}");

    // A client that opens a connection and hangs up without a request.
    drop(TcpStream::connect(addr).unwrap());

    // A valid head with a lying Content-Length larger than the cap.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"POST /sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 99999999\r\n\r\n")
        .unwrap();
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    assert!(out.starts_with("HTTP/1.1 413"), "{out}");

    // After all of that, the server still serves.
    let ok = request(addr, "GET", "/healthz", "");
    assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
    let sweep = request(addr, "POST", "/sweep", r#"{"iterations": [5]}"#);
    assert!(sweep.starts_with("HTTP/1.1 200"), "{sweep}");
    assert!(body_of(&sweep).lines().last().unwrap().contains("\"cells\":1"), "{sweep}");

    let summary = handle.stop();
    assert!(summary.drained_clean);
    let _ = std::fs::remove_dir_all(&dir);
}

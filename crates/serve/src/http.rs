//! A deliberately small HTTP/1.1 layer: enough for a JSON service, with
//! the abuse guards a listening socket needs.
//!
//! Requests are read with a hard read-timeout (a slowloris client that
//! dribbles bytes gets 408 and a closed socket, it cannot pin a worker),
//! a 16 KiB header cap and a 1 MiB body cap (413 past either). Responses
//! always send `Connection: close` — one request per connection keeps
//! the server stateless per socket and lets streamed NDJSON bodies end
//! at EOF without chunked encoding.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Hard cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on a request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// How long a client may take to deliver a complete request.
pub const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, upper-cased by the client per HTTP.
    pub method: String,
    /// Request target (path only; no query parsing — the API is POST
    /// bodies and bare GET paths).
    pub path: String,
    /// Decoded body (empty when no `Content-Length`).
    pub body: String,
}

/// Why a request could not be read; each maps to one status line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// 400 — malformed request line, headers or body.
    Bad(String),
    /// 408 — the client ran out the read timeout mid-request.
    Timeout,
    /// 413 — head or body over the caps.
    TooLarge(String),
}

impl RequestError {
    /// The status code this error answers with.
    pub fn status(&self) -> u16 {
        match self {
            RequestError::Bad(_) => 400,
            RequestError::Timeout => 408,
            RequestError::TooLarge(_) => 413,
        }
    }

    /// Human-readable detail for the JSON error body.
    pub fn detail(&self) -> String {
        match self {
            RequestError::Bad(why) => why.clone(),
            RequestError::Timeout => "request not completed within the read timeout".into(),
            RequestError::TooLarge(why) => why.clone(),
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Reads one request off the stream under the abuse guards.
///
/// # Errors
///
/// Returns the [`RequestError`] the caller should answer with; socket
/// errors surface as 400 (the client is gone or broken either way).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, RequestError> {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    // Read until the blank line that ends the head, clamping each read
    // so the buffer never exceeds the cap — the documented 16 KiB limit
    // is exact, not cap-plus-one-chunk.
    let head_end = loop {
        if let Some(i) = find_head_end(&buf) {
            break i;
        }
        let room = MAX_HEAD_BYTES.saturating_sub(buf.len());
        if room == 0 {
            return Err(RequestError::TooLarge(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let want = room.min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => return Err(RequestError::Bad("connection closed mid-request".into())),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => return Err(RequestError::Timeout),
            Err(e) => return Err(RequestError::Bad(format!("read failed: {e}"))),
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    let version = parts.next().unwrap_or_default();
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(RequestError::Bad(format!("malformed request line `{request_line}`")));
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| RequestError::Bad("malformed Content-Length".into()))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::TooLarge(format!("body exceeds {MAX_BODY_BYTES} bytes")));
    }
    // Anything already read past the head belongs to the body.
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(RequestError::Bad("connection closed mid-body".into())),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => return Err(RequestError::Timeout),
            Err(e) => return Err(RequestError::Bad(format!("read failed: {e}"))),
        }
    }
    body.truncate(content_length);
    let body =
        String::from_utf8(body).map_err(|_| RequestError::Bad("body is not valid UTF-8".into()))?;
    Ok(Request { method, path, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete response with a body and closes the exchange.
pub fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    // The client may already be gone; nothing useful to do about it.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Writes a JSON error body `{"error": ..., "retry_after_s": ...}`.
pub fn respond_error(
    stream: &mut TcpStream,
    status: u16,
    detail: &str,
    retry_after_s: Option<u64>,
) {
    let retry_header = retry_after_s.map(|s| format!("Retry-After: {s}\r\n")).unwrap_or_default();
    let body = match retry_after_s {
        Some(s) => {
            format!("{{\"error\":\"{}\",\"retry_after_s\":{s}}}\n", crate::json::escape(detail))
        }
        None => format!("{{\"error\":\"{}\"}}\n", crate::json::escape(detail)),
    };
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\n{retry_header}\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Starts a streamed NDJSON response (body ends at connection close).
///
/// # Errors
///
/// Propagates the write error (the client hung up).
pub fn start_ndjson(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn parses_a_post_with_body() {
        let (mut client, mut server) = pair();
        client
            .write_all(b"POST /sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\n{}")
            .unwrap();
        let req = read_request(&mut server).expect("well-formed request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sweep");
        assert_eq!(req.body, "{}");
    }

    #[test]
    fn parses_a_get_without_body() {
        let (mut client, mut server) = pair();
        client.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let req = read_request(&mut server).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn garbage_is_a_400() {
        let (mut client, mut server) = pair();
        client.write_all(b"complete garbage\r\n\r\n").unwrap();
        let err = read_request(&mut server).unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn oversized_bodies_are_a_413_without_reading_them() {
        let (mut client, mut server) = pair();
        let head =
            format!("POST /sweep HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        client.write_all(head.as_bytes()).unwrap();
        let err = read_request(&mut server).unwrap_err();
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn oversized_heads_are_a_413_at_exactly_the_cap() {
        let (mut client, mut server) = pair();
        // A head that never terminates: the server must stop buffering
        // at the cap, not one read-chunk past it.
        client.write_all(b"GET / HTTP/1.1\r\nX-Pad: ").unwrap();
        client.write_all(&vec![b'a'; MAX_HEAD_BYTES + 1024]).unwrap();
        let err = read_request(&mut server).unwrap_err();
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn a_closed_half_request_is_a_400() {
        let (client, mut server) = pair();
        {
            let mut c = client;
            c.write_all(b"POST /sweep HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap();
            // Drop closes the socket with the body short.
        }
        let err = read_request(&mut server).unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn slowloris_times_out_as_a_408() {
        let (mut client, mut server) = pair();
        client.write_all(b"GET /he").unwrap();
        // Never send the rest; the 2 s read timeout must fire.
        let started = std::time::Instant::now();
        let err = read_request(&mut server).unwrap_err();
        assert_eq!(err, RequestError::Timeout);
        assert_eq!(err.status(), 408);
        assert!(started.elapsed() < Duration::from_secs(30), "must not hang");
    }
}

//! Graceful-drain signal plumbing, dependency-free.
//!
//! `SIGTERM`/`SIGINT` flip one `AtomicBool` that the accept loop polls;
//! nothing else happens in the handler (an async-signal-safe store is
//! all POSIX allows). The binding goes straight to libc's `signal`
//! symbol — std already links libc on unix, and the workspace policy
//! rules out the `libc` crate. Non-unix builds get a no-op install and
//! rely on `POST /shutdown`.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// True once a drain has been requested (by signal or programmatically).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Requests a drain programmatically (the `POST /shutdown` route, and
/// tests).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Re-arms the flag (tests that start several servers in one process).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use std::ffi::c_int;

    extern "C" {
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    extern "C" fn on_signal(_signum: c_int) {
        super::request_shutdown();
    }

    /// Binds SIGTERM and SIGINT to the drain flag.
    pub fn install() {
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal binding off unix; `POST /shutdown` still drains.
    pub fn install() {}
}

/// Installs the SIGTERM/SIGINT handlers (idempotent).
pub fn install_handlers() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_flag_flips_and_resets() {
        reset();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset();
        assert!(!shutdown_requested());
    }

    #[cfg(unix)]
    #[test]
    fn installing_handlers_does_not_disturb_the_process() {
        // The handler itself is exercised end-to-end by the CI smoke
        // (real SIGTERM against a running server); here we only prove
        // installation is safe to call repeatedly.
        install_handlers();
        install_handlers();
    }
}

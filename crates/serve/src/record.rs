//! The per-cell result record the service journals, caches and streams.
//!
//! A [`CellRecord`] is deliberately free of wall-clock data: it carries
//! only what the deterministic simulator produced (status, makespan,
//! attempt/budget accounting) plus the cell's canonical spec. That is
//! what makes resumed sweeps byte-identical to uninterrupted ones — the
//! aggregate hash is computed over these serialized records, and a
//! cached replay must reproduce them bit for bit. Latency and cache-hit
//! telemetry live in the server's counters instead.

use crate::json::{self, Json};
use crate::spec::CellSpec;

/// Version stamp of the record wire format. Bump on breaking changes;
/// readers accept every version up to the current one (mirroring the
/// `Matrix::to_json` v2 precedent).
pub const RECORD_SCHEMA_VERSION: u64 = 1;

/// One completed (or poisoned) sweep cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellRecord {
    /// The cell's spec, embedded so the journal is self-contained and
    /// the content hash can be re-verified on read-back.
    pub spec: CellSpec,
    /// The cell's content hash at write time (integrity check: loaders
    /// recompute `spec.content_hash()` and refuse a mismatch).
    pub hash: String,
    /// Terminal status: `ok`, `recovered`, `reconfigured`, `degraded`,
    /// `quarantined` (deadlock/timeout twice) or `violated` (dependence
    /// order broken — deterministic, never retried).
    pub status: String,
    /// Makespan in cycles (0 when the run never finished).
    pub makespan: u64,
    /// Attempts spent (1 on first-try success, 2 after a retry).
    pub attempts: u32,
    /// Cycle budget of the final attempt.
    pub budget: u64,
    /// Human-readable outcome detail (the robustness-matrix cell label).
    pub detail: String,
}

impl CellRecord {
    /// True for records the circuit breaker must skip instead of rerun.
    pub fn is_poisoned(&self) -> bool {
        matches!(self.status.as_str(), "quarantined" | "violated")
    }

    /// Serializes the record as a single JSON line (the journal payload
    /// and the streamed result body, byte for byte).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema_version\":{},\"hash\":\"{}\",\"status\":\"{}\",\"makespan\":{},\
             \"attempts\":{},\"budget\":{},\"detail\":\"{}\",\"spec\":{}}}",
            RECORD_SCHEMA_VERSION,
            self.hash,
            json::escape(&self.status),
            self.makespan,
            self.attempts,
            self.budget,
            json::escape(&self.detail),
            self.spec.canonical_json()
        )
    }

    /// Parses a record document. `schema_version` must be present and
    /// no newer than [`RECORD_SCHEMA_VERSION`]; fields added in later
    /// minor revisions default when absent, so today's reader accepts
    /// yesterday's journals.
    ///
    /// # Errors
    ///
    /// Reports version, type and spec problems; does **not** verify the
    /// hash — that is the loader's job ([`crate::store::RunStore`]).
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let version = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("record missing `schema_version`")?;
        if version > RECORD_SCHEMA_VERSION {
            return Err(format!(
                "record schema_version {version} is newer than supported {RECORD_SCHEMA_VERSION}"
            ));
        }
        let spec_doc = doc.get("spec").ok_or("record missing `spec`")?;
        let spec = CellSpec::from_json(spec_doc)?;
        let hash = doc
            .get("hash")
            .and_then(Json::as_str)
            .ok_or("record missing `hash`")?
            .to_string();
        let text = |key: &str, default: &str| {
            doc.get(key).and_then(Json::as_str).unwrap_or(default).to_string()
        };
        let num = |key: &str, default: u64| doc.get(key).and_then(Json::as_u64).unwrap_or(default);
        Ok(CellRecord {
            spec,
            hash,
            status: text("status", "ok"),
            makespan: num("makespan", 0),
            attempts: num("attempts", 1) as u32,
            budget: num("budget", 0),
            detail: text("detail", ""),
        })
    }

    /// Parses a record from raw JSON text.
    ///
    /// # Errors
    ///
    /// Reports parse and shape failures.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CellRecord {
        let spec = CellSpec { iterations: 8, seed: 42, ..CellSpec::default() };
        CellRecord {
            hash: spec.content_hash(),
            spec,
            status: "ok".into(),
            makespan: 1234,
            attempts: 1,
            budget: 1_000_000,
            detail: "ok".into(),
        }
    }

    #[test]
    fn record_json_round_trips_byte_exact() {
        let rec = sample();
        let doc = rec.to_json();
        assert!(!doc.contains('\n'), "journal payloads must be single lines");
        let back = CellRecord::parse(&doc).expect("parse own serialization");
        assert_eq!(back, rec);
        // Byte identity, not just structural equality: the aggregate
        // hash is computed over these bytes.
        assert_eq!(back.to_json(), doc);
    }

    #[test]
    fn older_minor_revisions_still_parse() {
        // A hypothetical v1.0 writer that predates `attempts`, `budget`
        // and `detail`: those fields default, nothing errors.
        let spec = CellSpec::default();
        let old = format!(
            "{{\"schema_version\":1,\"hash\":\"{}\",\"status\":\"ok\",\"makespan\":77,\"spec\":{}}}",
            spec.content_hash(),
            spec.canonical_json()
        );
        let rec = CellRecord::parse(&old).expect("older record must parse");
        assert_eq!(rec.makespan, 77);
        assert_eq!(rec.attempts, 1);
        assert_eq!(rec.budget, 0);
        assert_eq!(rec.detail, "");
    }

    #[test]
    fn newer_schema_versions_are_refused() {
        let doc = sample().to_json().replace("\"schema_version\":1", "\"schema_version\":2");
        let err = CellRecord::parse(&doc).unwrap_err();
        assert!(err.contains("newer"), "{err}");
    }

    #[test]
    fn missing_required_fields_are_refused() {
        assert!(CellRecord::parse("{}").is_err());
        let no_spec = "{\"schema_version\":1,\"hash\":\"deadbeefdeadbeef\"}";
        assert!(CellRecord::parse(no_spec).unwrap_err().contains("spec"));
        let no_hash =
            format!("{{\"schema_version\":1,\"spec\":{}}}", CellSpec::default().canonical_json());
        assert!(CellRecord::parse(&no_hash).unwrap_err().contains("hash"));
    }

    #[test]
    fn poison_statuses_are_recognized() {
        let mut rec = sample();
        for (status, poisoned) in [
            ("ok", false),
            ("recovered", false),
            ("reconfigured", false),
            ("degraded", false),
            ("quarantined", true),
            ("violated", true),
        ] {
            rec.status = status.into();
            assert_eq!(rec.is_poisoned(), poisoned, "{status}");
        }
    }
}

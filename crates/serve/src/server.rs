//! The sweep-as-a-service server: accept loop, routing, streaming.
//!
//! One `TcpListener` in non-blocking mode is polled by the accept loop
//! (so SIGTERM is noticed within ~15 ms even with no traffic); each
//! accepted connection gets a worker thread that reads exactly one
//! request and answers it — no async runtime, in line with the
//! workspace's thread-per-unit-of-work pattern (`core/par.rs` runs the
//! cells themselves). Routes:
//!
//! | Route | Answer |
//! |---|---|
//! | `GET /healthz` | `{"ok":true}` liveness probe |
//! | `GET /stats` | counters, cache/journal state, admission level |
//! | `POST /sweep` | streamed NDJSON: one line per cell, then a summary |
//! | `POST /shutdown` | begins a graceful drain (as SIGTERM does) |
//!
//! A sweep body is a [`SweepSpec`] grid. Cells stream in deterministic
//! grid order; each line is `{"cell": <record>, "cached": bool}` and
//! the final line carries the sweep summary with an `aggregate_hash` —
//! FNV-1a folded over the serialized records in cell order, so two runs
//! of the same sweep (cached, resumed, or cold) can be compared for
//! byte identity with one string.
//!
//! Graceful drain: the accept loop stops taking connections, in-flight
//! requests run to completion (every completed cell is already
//! journaled before its line is streamed), then the server returns its
//! summary. A `kill -9` instead loses at most the journal line being
//! written — the store tolerates that as a truncated tail on restart.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use datasync_core::par::par_map;

use crate::http::{self, Request};
use crate::json;
use crate::queue::Admission;
use crate::record::CellRecord;
use crate::runner::run_cell;
use crate::spec::SweepSpec;
use crate::store::RunStore;
use crate::{hash, signal};

/// Version stamp on `/stats` bodies and sweep summary lines.
pub const SERVE_SCHEMA_VERSION: u64 = 1;

/// Cells dispatched to the thread pool per scheduling chunk: small
/// enough that lines stream steadily and admission slots free up as
/// work completes, large enough to keep every core busy.
const CHUNK_CELLS: usize = 64;

/// How long the accept loop sleeps when idle (also the SIGTERM
/// detection latency floor).
const ACCEPT_POLL: Duration = Duration::from_millis(15);

/// Hard ceiling on the post-drain wait for in-flight connections.
const DRAIN_WAIT: Duration = Duration::from_secs(60);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:8787` (`:0` picks a free port).
    pub addr: String,
    /// State directory (journal + quarantine reproducers).
    pub state_dir: PathBuf,
    /// Admission cap: cells in flight across all requests.
    pub queue_cap: usize,
    /// Hard cap on cells a single sweep may expand to (413 past it).
    pub max_cells: usize,
    /// Whether the accept loop also honors the process-global
    /// SIGTERM/SIGINT flag (the CLI's drain path). In-process servers —
    /// tests, the load-generator bench — leave this off so a signal
    /// test elsewhere in the process cannot drain them.
    pub watch_signals: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8787".into(),
            state_dir: PathBuf::from(".datasync-serve"),
            queue_cap: 4096,
            max_cells: 4096,
            watch_signals: false,
        }
    }
}

/// Lifetime counters, all monotone (reported by `/stats` and folded
/// into the final [`ServeSummary`]).
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    sweeps: AtomicU64,
    cells_computed: AtomicU64,
    cells_cached: AtomicU64,
    cells_quarantined: AtomicU64,
    poison_skips: AtomicU64,
    shed: AtomicU64,
    bad_requests: AtomicU64,
    latencies_us: Mutex<VecDeque<u64>>,
}

impl Counters {
    fn record_latency(&self, us: u64) {
        let mut ring = self.latencies_us.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() >= 4096 {
            ring.pop_front();
        }
        ring.push_back(us);
    }

    fn p99_us(&self) -> u64 {
        let ring = self.latencies_us.lock().unwrap_or_else(|e| e.into_inner());
        if ring.is_empty() {
            return 0;
        }
        let mut sorted: Vec<u64> = ring.iter().copied().collect();
        sorted.sort_unstable();
        sorted[(sorted.len() - 1) * 99 / 100]
    }
}

/// What a server did over its lifetime (returned when the drain ends).
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Requests answered (any route, errors included).
    pub requests: u64,
    /// Sweeps admitted.
    pub sweeps: u64,
    /// Cells computed fresh.
    pub cells_computed: u64,
    /// Cells served from the memo cache.
    pub cells_cached: u64,
    /// Cells newly poisoned.
    pub cells_quarantined: u64,
    /// Requests shed with 429.
    pub shed: u64,
    /// True when every in-flight connection finished inside the drain
    /// window.
    pub drained_clean: bool,
}

#[derive(Debug)]
struct Shared {
    config: ServeConfig,
    store: Mutex<RunStore>,
    admission: Admission,
    counters: Counters,
    local_shutdown: AtomicBool,
    open_conns: AtomicUsize,
}

impl Shared {
    fn draining(&self) -> bool {
        self.local_shutdown.load(Ordering::SeqCst)
            || (self.config.watch_signals && signal::shutdown_requested())
    }
}

/// A bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

/// A handle to a server running on a background thread (tests and the
/// load-generator bench; the CLI runs [`Server::run`] on its own
/// thread).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<ServeSummary>,
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful drain and waits for the server to finish.
    pub fn stop(self) -> ServeSummary {
        self.shared.local_shutdown.store(true, Ordering::SeqCst);
        self.thread.join().unwrap_or(ServeSummary {
            requests: 0,
            sweeps: 0,
            cells_computed: 0,
            cells_cached: 0,
            cells_quarantined: 0,
            shed: 0,
            drained_clean: false,
        })
    }
}

impl Server {
    /// Opens the state directory (replaying the journal) and binds the
    /// listen socket.
    ///
    /// # Errors
    ///
    /// Reports store and bind failures human-readably.
    pub fn bind(config: ServeConfig) -> Result<Server, String> {
        let store = RunStore::open(&config.state_dir)
            .map_err(|e| format!("cannot open state dir '{}': {e}", config.state_dir.display()))?;
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot bind '{}': {e}", config.addr))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot set non-blocking accept: {e}"))?;
        let addr = listener.local_addr().map_err(|e| format!("no local addr: {e}"))?;
        let admission = Admission::new(config.queue_cap);
        let shared = Arc::new(Shared {
            admission,
            store: Mutex::new(store),
            counters: Counters::default(),
            local_shutdown: AtomicBool::new(false),
            open_conns: AtomicUsize::new(0),
            config,
        });
        Ok(Server { listener, addr, shared })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// One line of boot telemetry for the operator: cache size and any
    /// journal damage found on replay.
    pub fn boot_report(&self) -> String {
        let store = self.shared.store.lock().unwrap_or_else(|e| e.into_inner());
        let load = store.load_report();
        let mut line = format!(
            "listening on {} — {} cached records ({} poisoned) replayed",
            self.addr,
            store.len(),
            store.poisoned()
        );
        if load.corrupt_lines > 0 || load.integrity_failures > 0 {
            line.push_str(&format!(
                ", {} corrupt lines and {} integrity failures skipped",
                load.corrupt_lines, load.integrity_failures
            ));
        }
        if load.truncated_tail {
            line.push_str(", truncated tail tolerated");
        }
        line
    }

    /// Runs the accept loop until a drain is requested, drains, and
    /// returns the lifetime summary.
    pub fn run(self) -> ServeSummary {
        let Server { listener, shared, .. } = self;
        loop {
            if shared.draining() {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nonblocking(false);
                    shared.open_conns.fetch_add(1, Ordering::SeqCst);
                    let conn_shared = Arc::clone(&shared);
                    std::thread::spawn(move || {
                        let _guard = ConnGuard(&conn_shared.open_conns);
                        handle_connection(&conn_shared, stream);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
        // Drain: no new connections; let in-flight requests finish.
        let deadline = Instant::now() + DRAIN_WAIT;
        while shared.open_conns.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let drained_clean = shared.open_conns.load(Ordering::SeqCst) == 0;
        let c = &shared.counters;
        ServeSummary {
            requests: c.requests.load(Ordering::SeqCst),
            sweeps: c.sweeps.load(Ordering::SeqCst),
            cells_computed: c.cells_computed.load(Ordering::SeqCst),
            cells_cached: c.cells_cached.load(Ordering::SeqCst),
            cells_quarantined: c.cells_quarantined.load(Ordering::SeqCst),
            shed: c.shed.load(Ordering::SeqCst),
            drained_clean,
        }
    }

    /// Binds and runs on a background thread; the handle stops it.
    ///
    /// # Errors
    ///
    /// Propagates [`Server::bind`] failures.
    pub fn spawn(config: ServeConfig) -> Result<ServerHandle, String> {
        let server = Server::bind(config)?;
        let addr = server.addr();
        let shared = Arc::clone(&server.shared);
        let thread = std::thread::spawn(move || server.run());
        Ok(ServerHandle { addr, shared, thread })
    }
}

/// Decrements the open-connection count when the worker exits, panic
/// included (a leaked count would make every future drain hang).
struct ConnGuard<'a>(&'a AtomicUsize);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    shared.counters.requests.fetch_add(1, Ordering::SeqCst);
    let request = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            shared.counters.bad_requests.fetch_add(1, Ordering::SeqCst);
            http::respond_error(&mut stream, e.status(), &e.detail(), None);
            return;
        }
    };
    route(shared, &mut stream, &request);
}

fn route(shared: &Shared, stream: &mut TcpStream, request: &Request) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => http::respond(stream, 200, "application/json", "{\"ok\":true}\n"),
        ("GET", "/stats") => {
            let body = stats_json(shared);
            http::respond(stream, 200, "application/json", &body);
        }
        ("POST", "/shutdown") => {
            shared.local_shutdown.store(true, Ordering::SeqCst);
            http::respond(stream, 200, "application/json", "{\"ok\":true,\"draining\":true}\n");
        }
        ("POST", "/sweep") => handle_sweep(shared, stream, &request.body),
        _ => http::respond_error(
            stream,
            404,
            &format!("no route for {} {}", request.method, request.path),
            None,
        ),
    }
}

fn stats_json(shared: &Shared) -> String {
    let (records, poisoned, load) = {
        let store = shared.store.lock().unwrap_or_else(|e| e.into_inner());
        let load = store.load_report().clone();
        (store.len(), store.poisoned(), load)
    };
    let c = &shared.counters;
    format!(
        "{{\"schema_version\":{SERVE_SCHEMA_VERSION},\"cache_records\":{records},\
         \"poisoned\":{poisoned},\"in_flight\":{},\"queue_cap\":{},\
         \"max_cells_per_request\":{},\"requests\":{},\"sweeps\":{},\"cells_computed\":{},\
         \"cells_cached\":{},\"cells_quarantined\":{},\"poison_skips\":{},\"shed\":{},\
         \"bad_requests\":{},\"p99_latency_us\":{},\"journal\":{{\"replayed\":{},\
         \"corrupt_lines\":{},\"integrity_failures\":{},\"truncated_tail\":{}}}}}\n",
        shared.admission.in_flight(),
        shared.admission.cap(),
        shared.config.max_cells,
        c.requests.load(Ordering::SeqCst),
        c.sweeps.load(Ordering::SeqCst),
        c.cells_computed.load(Ordering::SeqCst),
        c.cells_cached.load(Ordering::SeqCst),
        c.cells_quarantined.load(Ordering::SeqCst),
        c.poison_skips.load(Ordering::SeqCst),
        c.shed.load(Ordering::SeqCst),
        c.bad_requests.load(Ordering::SeqCst),
        c.p99_us(),
        load.replayed,
        load.corrupt_lines,
        load.integrity_failures,
        load.truncated_tail,
    )
}

fn handle_sweep(shared: &Shared, stream: &mut TcpStream, body: &str) {
    let started = Instant::now();
    let sweep = match json::parse(body).and_then(|doc| SweepSpec::from_json(&doc)) {
        Ok(s) => s,
        Err(why) => {
            shared.counters.bad_requests.fetch_add(1, Ordering::SeqCst);
            http::respond_error(stream, 400, &why, None);
            return;
        }
    };
    // Cap-check on the axis lengths alone (`cell_count` saturates on
    // overflow) — expansion only happens for grids already under the
    // cap, so a small body cross-multiplying into billions of cells
    // costs nothing before its 413.
    let cell_count = sweep.cell_count();
    if cell_count > shared.config.max_cells {
        shared.counters.bad_requests.fetch_add(1, Ordering::SeqCst);
        http::respond_error(
            stream,
            413,
            &format!(
                "sweep expands to {cell_count} cells, per-request cap is {} — split the grid",
                shared.config.max_cells
            ),
            None,
        );
        return;
    }
    let cells = sweep.expand();
    let Some(mut ticket) = shared.admission.try_admit(cells.len()) else {
        shared.counters.shed.fetch_add(1, Ordering::SeqCst);
        http::respond_error(
            stream,
            429,
            &format!(
                "admission queue full ({} of {} cells in flight)",
                shared.admission.in_flight(),
                shared.admission.cap()
            ),
            Some(1),
        );
        return;
    };
    shared.counters.sweeps.fetch_add(1, Ordering::SeqCst);
    if http::start_ndjson(stream).is_err() {
        return;
    }
    let mut computed = 0u64;
    let mut cached = 0u64;
    let mut quarantined = 0u64;
    let mut aggregate = hash::fnv1a_seed();
    let mut client_gone = false;
    for chunk in cells.chunks(CHUNK_CELLS) {
        // Pass 1 (under the store lock): serve cache hits, collect misses.
        let mut lines: Vec<Option<(CellRecord, bool)>> = vec![None; chunk.len()];
        let mut misses: Vec<(usize, crate::spec::CellSpec)> = Vec::new();
        {
            let store = shared.store.lock().unwrap_or_else(|e| e.into_inner());
            for (i, spec) in chunk.iter().enumerate() {
                match store.get(&spec.content_hash()) {
                    Some(rec) => {
                        if rec.is_poisoned() {
                            shared.counters.poison_skips.fetch_add(1, Ordering::SeqCst);
                        }
                        lines[i] = Some((rec.clone(), true));
                    }
                    None => misses.push((i, spec.clone())),
                }
            }
        }
        // Pass 2 (no lock): compute the misses across cores.
        let runs = par_map(misses, |(i, spec)| (i, run_cell(&spec)));
        // Pass 3 (under the lock): journal before streaming — a line a
        // client has seen is always durable.
        {
            let mut store = shared.store.lock().unwrap_or_else(|e| e.into_inner());
            for (i, run) in runs {
                if let Some(reproducer) = &run.reproducer {
                    let _ = store.write_reproducer(&run.record.hash, reproducer);
                }
                // A failed journal append (disk full?) skips the cache
                // insert inside `insert` itself; the result still
                // streams — memory never outruns disk.
                let _ = store.insert(run.record.clone());
                lines[i] = Some((run.record, false));
            }
        }
        // Pass 4: stream the chunk in cell order and free its slots.
        for entry in &lines {
            let Some((record, was_cached)) = entry else { continue };
            if *was_cached {
                cached += 1;
            } else {
                computed += 1;
            }
            if record.is_poisoned() {
                if !*was_cached {
                    shared.counters.cells_quarantined.fetch_add(1, Ordering::SeqCst);
                }
                quarantined += 1;
            }
            let rec_json = record.to_json();
            aggregate = hash::fold(aggregate, rec_json.as_bytes());
            aggregate = hash::fold(aggregate, b"\n");
            if !client_gone {
                let line = format!("{{\"cell\":{rec_json},\"cached\":{was_cached}}}\n");
                use std::io::Write as _;
                if stream.write_all(line.as_bytes()).is_err() {
                    // The client hung up mid-stream. Finish nothing more
                    // for it, but everything computed so far is journaled
                    // — a resubmission will be pure cache hits.
                    client_gone = true;
                }
            }
        }
        ticket.release(chunk.len());
        if client_gone {
            break;
        }
    }
    shared.counters.cells_computed.fetch_add(computed, Ordering::SeqCst);
    shared.counters.cells_cached.fetch_add(cached, Ordering::SeqCst);
    let elapsed_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    shared.counters.record_latency(elapsed_us);
    if !client_gone {
        use std::io::Write as _;
        let summary = format!(
            "{{\"summary\":{{\"schema_version\":{SERVE_SCHEMA_VERSION},\"cells\":{},\
             \"computed\":{computed},\"cached\":{cached},\"quarantined\":{quarantined},\
             \"aggregate_hash\":\"{:016x}\",\"elapsed_us\":{elapsed_us}}}}}\n",
            cells.len(),
            aggregate
        );
        let _ = stream.write_all(summary.as_bytes());
        let _ = stream.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn temp_dir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "datasync-server-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn config(tag: &str) -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            state_dir: temp_dir(tag),
            ..ServeConfig::default()
        }
    }

    fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes()).unwrap();
        stream.write_all(body.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    fn body_of(response: &str) -> &str {
        response.split("\r\n\r\n").nth(1).unwrap_or("")
    }

    #[test]
    fn healthz_stats_and_404_routes_answer() {
        let cfg = config("routes");
        let dir = cfg.state_dir.clone();
        let handle = Server::spawn(cfg).expect("spawn");
        let ok = request(handle.addr(), "GET", "/healthz", "");
        assert!(ok.starts_with("HTTP/1.1 200"), "{ok}");
        assert!(body_of(&ok).contains("\"ok\":true"));
        let stats = request(handle.addr(), "GET", "/stats", "");
        assert!(body_of(&stats).contains("\"schema_version\":1"), "{stats}");
        assert!(body_of(&stats).contains("\"cache_records\":0"));
        let missing = request(handle.addr(), "GET", "/nope", "");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let summary = handle.stop();
        assert!(summary.drained_clean);
        assert_eq!(summary.requests, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_streams_cells_then_caches_them() {
        let cfg = config("sweep");
        let dir = cfg.state_dir.clone();
        let handle = Server::spawn(cfg).expect("spawn");
        let body = r#"{"schemes": ["process", "instance"], "iterations": [6, 8], "seed": 3}"#;
        let first = request(handle.addr(), "POST", "/sweep", body);
        assert!(first.starts_with("HTTP/1.1 200"), "{first}");
        let lines: Vec<&str> = body_of(&first).lines().collect();
        assert_eq!(lines.len(), 5, "4 cells + summary:\n{first}");
        assert!(lines[..4].iter().all(|l| l.contains("\"cached\":false")));
        let summary1 = lines[4];
        assert!(summary1.contains("\"computed\":4"), "{summary1}");
        assert!(summary1.contains("\"cached\":0"));
        // Resubmission: pure cache hits, byte-identical aggregate.
        let second = request(handle.addr(), "POST", "/sweep", body);
        let lines2: Vec<&str> = body_of(&second).lines().collect();
        assert!(lines2[..4].iter().all(|l| l.contains("\"cached\":true")));
        assert!(lines2[4].contains("\"computed\":0"), "{}", lines2[4]);
        assert!(lines2[4].contains("\"cached\":4"));
        let hash_of = |s: &str| s.split("\"aggregate_hash\":\"").nth(1).unwrap()[..16].to_string();
        assert_eq!(hash_of(summary1), hash_of(lines2[4]), "cached results must be byte-identical");
        let summary = handle.stop();
        assert_eq!(summary.cells_computed, 4);
        assert_eq!(summary.cells_cached, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journaled_cells_survive_a_server_restart() {
        let cfg = config("restart");
        let dir = cfg.state_dir.clone();
        let body = r#"{"iterations": [5, 7, 9], "seed": 11}"#;
        let (first_hash, first_summary);
        {
            let handle = Server::spawn(cfg.clone()).expect("spawn");
            let resp = request(handle.addr(), "POST", "/sweep", body);
            first_hash = body_of(&resp)
                .lines()
                .last()
                .unwrap()
                .split("\"aggregate_hash\":\"")
                .nth(1)
                .unwrap()[..16]
                .to_string();
            first_summary = handle.stop();
        }
        assert_eq!(first_summary.cells_computed, 3);
        // A new server process over the same state dir: zero recompute,
        // same aggregate bytes.
        let handle = Server::spawn(cfg).expect("respawn");
        let resp = request(handle.addr(), "POST", "/sweep", body);
        let last = body_of(&resp).lines().last().unwrap().to_string();
        assert!(last.contains("\"computed\":0"), "{last}");
        assert!(last.contains(&format!("\"aggregate_hash\":\"{first_hash}\"")), "{last}");
        let second_summary = handle.stop();
        assert_eq!(second_summary.cells_computed, 0);
        assert_eq!(second_summary.cells_cached, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_and_oversized_sweeps_are_rejected() {
        let cfg = ServeConfig { max_cells: 4, ..config("reject") };
        let dir = cfg.state_dir.clone();
        let handle = Server::spawn(cfg).expect("spawn");
        let garbage = request(handle.addr(), "POST", "/sweep", "not json");
        assert!(garbage.starts_with("HTTP/1.1 400"), "{garbage}");
        let unknown = request(handle.addr(), "POST", "/sweep", r#"{"speed": 9}"#);
        assert!(unknown.starts_with("HTTP/1.1 400"), "{unknown}");
        assert!(body_of(&unknown).contains("speed"));
        let big = request(
            handle.addr(),
            "POST",
            "/sweep",
            r#"{"iterations": [1, 2, 3, 4, 5], "seed": 1}"#,
        );
        assert!(big.starts_with("HTTP/1.1 413"), "{big}");
        // A small body whose axes cross-multiply into millions of cells
        // is shed by the cap before any expansion allocates.
        let iterations: Vec<String> = (1..=1000).map(|i| i.to_string()).collect();
        let fault_pcts: Vec<String> = (0..=100).map(|p| p.to_string()).collect();
        let hostile = format!(
            r#"{{"schemes": ["reference", "instance", "statement", "process"],
                "fabrics": ["dedicated", "shared", "ideal"],
                "iterations": [{}], "processors": [2, 4, 8, 16],
                "caches": ["none", "mesi", "dragon"], "fault_pcts": [{}]}}"#,
            iterations.join(","),
            fault_pcts.join(",")
        );
        let started = std::time::Instant::now();
        let storm = request(handle.addr(), "POST", "/sweep", &hostile);
        assert!(storm.starts_with("HTTP/1.1 413"), "{storm}");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "the cap must fire before grid expansion"
        );
        let summary = handle.stop();
        assert_eq!(summary.sweeps, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_full_queue_sheds_with_retry_after() {
        let cfg = ServeConfig { queue_cap: 1, ..config("shed") };
        let dir = cfg.state_dir.clone();
        let handle = Server::spawn(cfg).expect("spawn");
        // Hold the only slot with a slow streaming request...
        let addr = handle.addr();
        let holder = std::thread::spawn(move || {
            request(addr, "POST", "/sweep", r#"{"iterations": [64], "processors": [8]}"#)
        });
        // ...then storm the valve until a shed is observed.
        let mut saw_shed = false;
        for _ in 0..200 {
            let resp = request(addr, "POST", "/sweep", r#"{"iterations": [6]}"#);
            if resp.starts_with("HTTP/1.1 429") {
                assert!(resp.contains("Retry-After: 1"), "{resp}");
                assert!(body_of(&resp).contains("\"retry_after_s\":1"));
                saw_shed = true;
                break;
            }
            // The holder may have finished already; re-arm by busying
            // the valve again is unnecessary — just assert it streamed.
            if resp.starts_with("HTTP/1.1 200") {
                break;
            }
        }
        let held = holder.join().unwrap();
        assert!(held.starts_with("HTTP/1.1 200"), "{held}");
        let summary = handle.stop();
        if saw_shed {
            assert!(summary.shed >= 1);
        }
        assert!(summary.drained_clean, "shedding must not wedge the drain");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The append-only sweep journal: crash-safe completion records.
//!
//! Each line is `<16-hex FNV-1a checksum> <single-line JSON payload>`.
//! Appends go straight to the file descriptor (no userspace buffering),
//! so a `kill -9` loses at most the line being written — which replay
//! then recognizes as a **truncated tail** and tolerates. A checksum
//! mismatch *before* the last line is real corruption: those lines are
//! counted and skipped (the affected cells simply recompute — safe,
//! because records are deterministic) rather than wedging the server.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::hash::fnv1a_hex;

/// An open journal, append-only.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
}

/// What replaying a journal found.
#[derive(Debug, Clone, Default)]
pub struct Replay {
    /// Payloads of every intact line, in file order.
    pub payloads: Vec<String>,
    /// Checksum-failed or malformed lines *before* the tail (real
    /// corruption, skipped and counted).
    pub corrupt_lines: usize,
    /// True when the final line was incomplete or checksum-failed — the
    /// expected signature of a crash mid-append, silently tolerated.
    pub truncated_tail: bool,
}

impl Journal {
    /// Opens (creating if missing) the journal at `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(path: &Path) -> std::io::Result<Journal> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal { path: path.to_path_buf(), file })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one payload as a checksummed line and pushes it to the
    /// OS immediately (one `write` syscall carries the whole line, so a
    /// killed process never interleaves partial lines).
    ///
    /// # Errors
    ///
    /// Propagates write errors; rejects payloads containing newlines.
    pub fn append(&mut self, payload: &str) -> std::io::Result<()> {
        if payload.contains('\n') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "journal payloads must be single lines",
            ));
        }
        let line = format!("{} {}\n", fnv1a_hex(payload.as_bytes()), payload);
        self.file.write_all(line.as_bytes())
    }

    /// Replays the journal at `path`. A missing file is an empty replay
    /// (first boot); read errors propagate.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than `NotFound`.
    pub fn replay(path: &Path) -> std::io::Result<Replay> {
        let mut raw = String::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_string(&mut raw)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Replay::default()),
            Err(e) => return Err(e),
        }
        let mut replay = Replay::default();
        // A well-formed journal ends in '\n'; anything after the final
        // newline is a torn append.
        let (body, tail) = match raw.rfind('\n') {
            Some(i) => (&raw[..=i], &raw[i + 1..]),
            None => ("", raw.as_str()),
        };
        if !tail.is_empty() {
            replay.truncated_tail = true;
        }
        let lines: Vec<&str> = body.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            match check_line(line) {
                Some(payload) => replay.payloads.push(payload.to_string()),
                None if i + 1 == lines.len() && tail.is_empty() => {
                    // A bad *final* line is also a torn append (the
                    // newline made it out but the body did not fsync in
                    // full — possible on power loss).
                    replay.truncated_tail = true;
                }
                None => replay.corrupt_lines += 1,
            }
        }
        Ok(replay)
    }
}

/// Verifies one journal line; returns its payload if intact.
fn check_line(line: &str) -> Option<&str> {
    let (sum, payload) = line.split_once(' ')?;
    if sum.len() != 16 || !sum.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    (fnv1a_hex(payload.as_bytes()) == sum).then_some(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "datasync-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_then_replay_round_trips() {
        let path = temp_path("roundtrip");
        {
            let mut j = Journal::open(&path).unwrap();
            j.append("{\"a\":1}").unwrap();
            j.append("{\"b\":2}").unwrap();
        }
        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.payloads, vec!["{\"a\":1}", "{\"b\":2}"]);
        assert_eq!(replay.corrupt_lines, 0);
        assert!(!replay.truncated_tail);
        // Reopening appends, never truncates.
        Journal::open(&path).unwrap().append("{\"c\":3}").unwrap();
        assert_eq!(Journal::replay(&path).unwrap().payloads.len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_journal_is_an_empty_replay() {
        let replay = Journal::replay(Path::new("/nonexistent/journal.log")).unwrap();
        assert!(replay.payloads.is_empty());
        assert!(!replay.truncated_tail);
    }

    #[test]
    fn truncated_tail_is_tolerated() {
        let path = temp_path("tail");
        {
            let mut j = Journal::open(&path).unwrap();
            j.append("{\"a\":1}").unwrap();
            j.append("{\"b\":2}").unwrap();
        }
        // Chop mid-line, as kill -9 during the final write would.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.payloads, vec!["{\"a\":1}"]);
        assert!(replay.truncated_tail, "a torn final line is a tail, not corruption");
        assert_eq!(replay.corrupt_lines, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_file_corruption_is_detected_and_skipped() {
        let path = temp_path("corrupt");
        {
            let mut j = Journal::open(&path).unwrap();
            j.append("{\"a\":1}").unwrap();
            j.append("{\"b\":2}").unwrap();
            j.append("{\"c\":3}").unwrap();
        }
        // Flip a byte inside the middle line's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let lines: Vec<usize> =
            bytes.iter().enumerate().filter(|(_, b)| **b == b'\n').map(|(i, _)| i).collect();
        let mid = lines[0] + 20;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.payloads, vec!["{\"a\":1}", "{\"c\":3}"]);
        assert_eq!(replay.corrupt_lines, 1, "mid-file damage is corruption, not a tail");
        assert!(!replay.truncated_tail);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn newlines_in_payloads_are_rejected() {
        let path = temp_path("newline");
        let mut j = Journal::open(&path).unwrap();
        assert!(j.append("two\nlines").is_err());
        let _ = std::fs::remove_file(&path);
    }
}

//! Sweep-cell specifications and their canonical content hash.
//!
//! A [`CellSpec`] is one simulator run the service can be asked for: a
//! scheme × fabric × workload-size × machine-size × cache × fault-plan
//! point. Its identity is the FNV-1a hash of its **canonical** JSON
//! form — a fixed field order with every field explicit — so the hash
//! is invariant to request-side field order and omitted-default fields,
//! while any *semantic* change (scheme, fabric, geometry, fault
//! intensity, seed, …) changes it. That hash keys the memo cache, the
//! journal and the quarantine circuit breaker.
//!
//! A [`SweepSpec`] is the request-side grid (lists per axis) that
//! [`SweepSpec::expand`]s into cells in a deterministic nesting order,
//! so a resubmitted sweep enumerates the same cells in the same order —
//! the property the resume drill and the `aggregate_hash` byte-identity
//! check both rely on.

use crate::hash::fnv1a_hex;
use crate::json::{self, Json};
use datasync_sim::{CacheModel, CoherenceProtocol, FabricKind, FaultPlan};

/// Stable scheme keys accepted by the service (the same vocabulary the
/// chaos fuzzer replays by; `Scheme::name` strings carry parameters and
/// are not stable identifiers).
pub const SCHEME_KEYS: [&str; 5] = ["reference", "instance", "statement", "process", "barrier"];

/// Version stamp written into every canonical cell document.
pub const CELL_SPEC_VERSION: u64 = 1;

/// One sweep cell: everything that determines a run's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSpec {
    /// Scheme key (see [`SCHEME_KEYS`]).
    pub scheme: String,
    /// Sync-fabric backend.
    pub fabric: FabricKind,
    /// Loop iteration count (Fig 2.1 workload).
    pub iterations: i64,
    /// Processor count.
    pub processors: usize,
    /// Private-cache model under the data bus.
    pub cache: CacheModel,
    /// Bounded-chaos fault intensity, percent (0 = fault-free).
    pub fault_pct: u32,
    /// Fault-plan seed.
    pub seed: u64,
    /// Per-cell cycle budget override; 0 derives the budget from
    /// `MachineConfig::scaled_max_cycles` (the production default).
    pub deadline_cycles: u64,
}

impl Default for CellSpec {
    fn default() -> Self {
        CellSpec {
            scheme: "process".to_string(),
            fabric: FabricKind::Dedicated,
            iterations: 16,
            processors: 4,
            cache: CacheModel::None,
            fault_pct: 0,
            seed: 0,
            deadline_cycles: 0,
        }
    }
}

/// Default cache geometry when a sweep names a protocol without one
/// (sets × assoc × line words).
const DEFAULT_GEOMETRY: (u32, u32, u32) = (16, 2, 4);

impl CellSpec {
    /// The canonical single-line JSON form: fixed field order, every
    /// field explicit (a cacheless cell writes zero geometry, matching
    /// the chaos-reproducer convention). The one exception is cluster
    /// geometry, which only a clustered cell writes at all: a flat
    /// cell's canonical bytes are identical to what the pre-clustered
    /// service produced, so every journaled hash and run-cache entry
    /// from older deployments stays valid. [`CellSpec::content_hash`]
    /// is defined over these bytes.
    pub fn canonical_json(&self) -> String {
        let (cache_word, sets, assoc, line, sync_bit) = match self.cache {
            CacheModel::None => ("none".to_string(), 0, 0, 0, 0),
            CacheModel::Private { protocol, sets, assoc, line_words, cache_sync, .. } => {
                (protocol.to_string(), sets, assoc, line_words, u32::from(cache_sync))
            }
        };
        let geometry = match self.fabric {
            FabricKind::Clustered { clusters, bridge_latency, coalesce_window } => format!(
                "\"clusters\":{clusters},\"bridge_latency\":{bridge_latency},\
                 \"coalesce_window\":{coalesce_window},"
            ),
            _ => String::new(),
        };
        format!(
            "{{\"cell_spec\":{},\"scheme\":\"{}\",\"fabric\":\"{}\",{}\"iterations\":{},\
             \"processors\":{},\"cache\":\"{}\",\"cache_sets\":{},\"cache_assoc\":{},\
             \"cache_line\":{},\"cache_sync\":{},\"fault_pct\":{},\"seed\":{},\
             \"deadline_cycles\":{}}}",
            CELL_SPEC_VERSION,
            json::escape(&self.scheme),
            self.fabric,
            geometry,
            self.iterations,
            self.processors,
            cache_word,
            sets,
            assoc,
            line,
            sync_bit,
            self.fault_pct,
            self.seed,
            self.deadline_cycles
        )
    }

    /// The cell's content address: FNV-1a-64 of the canonical JSON,
    /// 16 hex digits.
    pub fn content_hash(&self) -> String {
        fnv1a_hex(self.canonical_json().as_bytes())
    }

    /// Reads a cell from a parsed JSON object. Field order is free,
    /// omitted fields take their defaults (so a request that spells out
    /// a default hashes identically to one that omits it), unknown keys
    /// are rejected — a typoed `"procesors"` must not silently run the
    /// default machine.
    ///
    /// # Errors
    ///
    /// Reports the first unknown key, ill-typed field, or
    /// [`CellSpec::validate`] failure.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        const KNOWN: [&str; 16] = [
            "cell_spec",
            "scheme",
            "fabric",
            "clusters",
            "bridge_latency",
            "coalesce_window",
            "iterations",
            "processors",
            "cache",
            "cache_sets",
            "cache_assoc",
            "cache_line",
            "cache_sync",
            "fault_pct",
            "seed",
            "deadline_cycles",
        ];
        if !matches!(doc, Json::Obj(_)) {
            return Err("cell spec must be a JSON object".into());
        }
        if let Some(unknown) = doc.keys().iter().find(|k| !KNOWN.contains(k)) {
            return Err(format!("unknown cell-spec field `{unknown}`"));
        }
        if let Some(v) = doc.get("cell_spec") {
            if v.as_u64() != Some(CELL_SPEC_VERSION) {
                return Err("unsupported cell_spec version".into());
            }
        }
        let d = CellSpec::default();
        let str_field = |key: &str, default: &str| -> Result<String, String> {
            match doc.get(key) {
                None => Ok(default.to_string()),
                Some(v) => {
                    v.as_str().map(str::to_string).ok_or(format!("`{key}` must be a string"))
                }
            }
        };
        let num_field = |key: &str, default: u64| -> Result<u64, String> {
            match doc.get(key) {
                None => Ok(default),
                Some(v) => v.as_u64().ok_or(format!("`{key}` must be a non-negative integer")),
            }
        };
        let fabric_name = str_field("fabric", "dedicated")?;
        let mut fabric = FabricKind::parse(&fabric_name)
            .ok_or_else(|| format!("unknown fabric `{fabric_name}`"))?;
        match &mut fabric {
            FabricKind::Clustered { clusters, bridge_latency, coalesce_window } => {
                *clusters = num_field("clusters", u64::from(*clusters))? as u32;
                *bridge_latency = num_field("bridge_latency", u64::from(*bridge_latency))? as u32;
                *coalesce_window =
                    num_field("coalesce_window", u64::from(*coalesce_window))? as u32;
            }
            _ => {
                // Cluster geometry on a flat fabric is moot: type-check
                // it, then normalize it away — the same rule cacheless
                // cells apply to cache geometry.
                num_field("clusters", 0)?;
                num_field("bridge_latency", 0)?;
                num_field("coalesce_window", 0)?;
            }
        }
        let cache_word = str_field("cache", "none")?;
        let cache = parse_cache_word(
            &cache_word,
            num_field("cache_sets", u64::from(DEFAULT_GEOMETRY.0))? as u32,
            num_field("cache_assoc", u64::from(DEFAULT_GEOMETRY.1))? as u32,
            num_field("cache_line", u64::from(DEFAULT_GEOMETRY.2))? as u32,
            num_field("cache_sync", 1)? != 0,
        )?;
        let spec = CellSpec {
            scheme: str_field("scheme", &d.scheme)?,
            fabric,
            iterations: doc.get("iterations").map_or(Ok(d.iterations), |v| {
                v.as_i64().ok_or("`iterations` must be an integer")
            })?,
            processors: num_field("processors", d.processors as u64)? as usize,
            cache,
            fault_pct: num_field("fault_pct", u64::from(d.fault_pct))? as u32,
            seed: num_field("seed", d.seed)?,
            deadline_cycles: num_field("deadline_cycles", d.deadline_cycles)?,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Parses a cell from raw JSON text (canonical or not).
    ///
    /// # Errors
    ///
    /// Reports parse and validation failures.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&json::parse(text)?)
    }

    /// Rejects semantically impossible cells before any run is admitted.
    ///
    /// # Errors
    ///
    /// Returns a human-readable rejection reason.
    pub fn validate(&self) -> Result<(), String> {
        check_scheme(&self.scheme)?;
        check_barrier_machine(&self.scheme, self.processors)?;
        check_fabric_geometry(&self.fabric, self.processors)?;
        check_iterations(self.iterations)?;
        check_processors(self.processors)?;
        check_fault_pct(self.fault_pct)
    }

    /// The cell's fault plan: bounded chaos at `fault_pct` (the service
    /// deliberately excludes the unbounded classes — broadcast loss and
    /// fail-stop belong to the chaos fuzzer, not a latency-budgeted
    /// service), or a seeded no-fault plan at zero.
    pub fn fault_plan(&self) -> FaultPlan {
        if self.fault_pct > 0 {
            FaultPlan::chaos(self.seed, self.fault_pct)
        } else {
            FaultPlan { seed: self.seed, ..FaultPlan::none() }
        }
    }
}

/// Per-field admission checks, shared between [`CellSpec::validate`]
/// and the expansion-free sweep validation in
/// [`SweepSpec::validate_axes`] so the two can never drift apart.
fn check_scheme(scheme: &str) -> Result<(), String> {
    if SCHEME_KEYS.contains(&scheme) {
        Ok(())
    } else {
        Err(format!("unknown scheme `{scheme}` (expected one of {SCHEME_KEYS:?})"))
    }
}

fn check_barrier_machine(scheme: &str, processors: usize) -> Result<(), String> {
    if scheme == "barrier" && !processors.is_power_of_two() {
        return Err(format!(
            "barrier scheme needs a power-of-two machine, got {processors} processors"
        ));
    }
    Ok(())
}

/// Mirrors `MachineConfig::validate`'s clustered-fabric rules so a bad
/// geometry is rejected at admission, not deep inside a worker.
fn check_fabric_geometry(fabric: &FabricKind, processors: usize) -> Result<(), String> {
    if let FabricKind::Clustered { clusters, bridge_latency, .. } = fabric {
        if *clusters == 0 {
            return Err("clustered fabric needs at least one cluster".into());
        }
        if *bridge_latency == 0 {
            return Err("bridge_latency must be at least 1 cycle".into());
        }
        let c = *clusters as usize;
        if c > processors || !processors.is_multiple_of(c) {
            return Err(format!(
                "clusters ({clusters}) must divide the processor count ({processors})"
            ));
        }
    }
    Ok(())
}

fn check_iterations(iterations: i64) -> Result<(), String> {
    if (1..=100_000).contains(&iterations) {
        Ok(())
    } else {
        Err(format!("iterations must be 1..=100000, got {iterations}"))
    }
}

fn check_processors(processors: usize) -> Result<(), String> {
    if (2..=64).contains(&processors) {
        Ok(())
    } else {
        Err(format!("processors must be 2..=64, got {processors}"))
    }
}

fn check_fault_pct(fault_pct: u32) -> Result<(), String> {
    if fault_pct > 100 {
        return Err(format!("fault_pct must be 0..=100, got {fault_pct}"));
    }
    Ok(())
}

/// Builds a [`CacheModel`] from the wire vocabulary (`none` or a
/// protocol name plus geometry).
fn parse_cache_word(
    word: &str,
    sets: u32,
    assoc: u32,
    line: u32,
    cache_sync: bool,
) -> Result<CacheModel, String> {
    if word == "none" {
        return Ok(CacheModel::None);
    }
    let protocol =
        CoherenceProtocol::parse(word).ok_or_else(|| format!("unknown cache `{word}`"))?;
    let model = CacheModel::private(protocol).geometry(sets, assoc, line);
    Ok(if cache_sync { model } else { model.sync_uncached() })
}

/// A sweep request: lists per axis, expanded as a full cross product.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Scheme keys to sweep.
    pub schemes: Vec<String>,
    /// Fabrics to sweep.
    pub fabrics: Vec<FabricKind>,
    /// Iteration counts to sweep.
    pub iterations: Vec<i64>,
    /// Machine sizes to sweep.
    pub processors: Vec<usize>,
    /// Cache words to sweep (`none` / `mesi` / `dragon`).
    pub caches: Vec<String>,
    /// Fault intensities to sweep (percent).
    pub fault_pcts: Vec<u32>,
    /// Fault-plan seed shared by every cell.
    pub seed: u64,
    /// Per-cell cycle-budget override (0 = derived).
    pub deadline_cycles: u64,
}

impl Default for SweepSpec {
    fn default() -> Self {
        let d = CellSpec::default();
        SweepSpec {
            schemes: vec![d.scheme],
            fabrics: vec![d.fabric],
            iterations: vec![d.iterations],
            processors: vec![d.processors],
            caches: vec!["none".to_string()],
            fault_pcts: vec![0],
            seed: 0,
            deadline_cycles: 0,
        }
    }
}

impl SweepSpec {
    /// Reads a sweep from a parsed JSON object: every axis is an
    /// optional array (omitted → the single-cell default), unknown keys
    /// are rejected.
    ///
    /// # Errors
    ///
    /// Reports the first unknown key, ill-typed axis, empty axis, or
    /// invalid cell the grid would expand to.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        const KNOWN: [&str; 11] = [
            "schemes",
            "fabrics",
            "clusters",
            "bridge_latencies",
            "coalesce_windows",
            "iterations",
            "processors",
            "caches",
            "fault_pcts",
            "seed",
            "deadline_cycles",
        ];
        if !matches!(doc, Json::Obj(_)) {
            return Err("sweep spec must be a JSON object".into());
        }
        if let Some(unknown) = doc.keys().iter().find(|k| !KNOWN.contains(k)) {
            return Err(format!("unknown sweep field `{unknown}`"));
        }
        fn axis<T>(
            doc: &Json,
            key: &str,
            default: Vec<T>,
            read: impl Fn(&Json) -> Result<T, String>,
        ) -> Result<Vec<T>, String> {
            match doc.get(key) {
                None => Ok(default),
                Some(v) => {
                    let items = v.as_arr().ok_or(format!("`{key}` must be an array"))?;
                    if items.is_empty() {
                        return Err(format!("`{key}` must not be empty"));
                    }
                    items.iter().map(read).collect()
                }
            }
        }
        let d = SweepSpec::default();
        let mut fabrics = axis(doc, "fabrics", d.fabrics, |v| {
            let name = v.as_str().ok_or("fabrics entries must be strings")?;
            FabricKind::parse(name).ok_or_else(|| format!("unknown fabric `{name}`"))
        })?;
        // The cluster-geometry axes ride in lockstep with `fabrics`:
        // entry i overrides fabric i's geometry. They are not a cross
        // product — a geometry only means anything next to the
        // clustered fabric it modifies (a flat entry must carry 0).
        for (key, write) in [("clusters", 0usize), ("bridge_latencies", 1), ("coalesce_windows", 2)]
        {
            let Some(v) = doc.get(key) else { continue };
            let items = v.as_arr().ok_or(format!("`{key}` must be an array"))?;
            if items.len() != fabrics.len() {
                return Err(format!(
                    "`{key}` must pair one entry with each fabric ({} fabrics, {} entries)",
                    fabrics.len(),
                    items.len()
                ));
            }
            for (fabric, item) in fabrics.iter_mut().zip(items) {
                let n = item
                    .as_u64()
                    .ok_or(format!("`{key}` entries must be non-negative integers"))?;
                match fabric {
                    FabricKind::Clustered { clusters, bridge_latency, coalesce_window } => {
                        *[clusters, bridge_latency, coalesce_window][write] = n as u32;
                    }
                    flat if n != 0 => {
                        return Err(format!(
                            "`{key}` entry {n} is paired with the flat `{flat}` fabric \
                             (only `clustered` entries take a geometry; use 0 here)"
                        ));
                    }
                    _ => {}
                }
            }
        }
        let spec = SweepSpec {
            schemes: axis(doc, "schemes", d.schemes, |v| {
                v.as_str().map(str::to_string).ok_or("schemes entries must be strings".into())
            })?,
            fabrics,
            iterations: axis(doc, "iterations", d.iterations, |v| {
                v.as_i64().ok_or("iterations entries must be integers".into())
            })?,
            processors: axis(doc, "processors", d.processors, |v| {
                v.as_u64()
                    .map(|n| n as usize)
                    .ok_or("processors entries must be integers".into())
            })?,
            caches: axis(doc, "caches", d.caches, |v| {
                let word = v.as_str().ok_or("caches entries must be strings")?;
                // Validate the vocabulary up front; geometry is defaulted.
                parse_cache_word(word, 1, 1, 1, true).map(|_| word.to_string())
            })?,
            fault_pcts: axis(doc, "fault_pcts", d.fault_pcts, |v| {
                v.as_u64().map(|n| n as u32).ok_or("fault_pcts entries must be integers".into())
            })?,
            seed: match doc.get("seed") {
                None => d.seed,
                Some(v) => v.as_u64().ok_or("`seed` must be a non-negative integer")?,
            },
            deadline_cycles: match doc.get("deadline_cycles") {
                None => d.deadline_cycles,
                Some(v) => v.as_u64().ok_or("`deadline_cycles` must be a non-negative integer")?,
            },
        };
        // Validate every cell the grid implies — element-wise, never by
        // expanding: a small request body can cross-multiply into
        // billions of cells, and materializing them here would be a
        // remote OOM before any cap is consulted.
        spec.validate_axes()?;
        Ok(spec)
    }

    /// Rejects any grid whose expansion would contain an invalid cell,
    /// in time linear in the axis lengths and without materializing a
    /// single [`CellSpec`]. Equivalent to validating `expand()` cell by
    /// cell because every [`CellSpec::validate`] rule reads one field —
    /// except the barrier/machine-size rule, whose cross product
    /// collapses to "if any scheme is `barrier`, every machine size
    /// must be a power of two".
    ///
    /// # Errors
    ///
    /// Returns the first rejection reason, phrased as
    /// [`CellSpec::validate`] would phrase it.
    pub fn validate_axes(&self) -> Result<(), String> {
        for scheme in &self.schemes {
            check_scheme(scheme)?;
        }
        if self.schemes.iter().any(|s| s == "barrier") {
            for &processors in &self.processors {
                check_barrier_machine("barrier", processors)?;
            }
        }
        // Like the barrier rule, cluster geometry couples two axes:
        // every clustered fabric entry must divide every machine size.
        for fabric in &self.fabrics {
            for &processors in &self.processors {
                check_fabric_geometry(fabric, processors)?;
            }
        }
        for &iterations in &self.iterations {
            check_iterations(iterations)?;
        }
        for &processors in &self.processors {
            check_processors(processors)?;
        }
        for &fault_pct in &self.fault_pcts {
            check_fault_pct(fault_pct)?;
        }
        Ok(())
    }

    /// Number of cells the grid expands to, saturating at `usize::MAX`
    /// on overflow so a hostile cross product still compares as "too
    /// large" against any cap instead of wrapping past it.
    pub fn cell_count(&self) -> usize {
        [
            self.fabrics.len(),
            self.iterations.len(),
            self.processors.len(),
            self.caches.len(),
            self.fault_pcts.len(),
        ]
        .iter()
        .fold(self.schemes.len(), |count, &axis| count.saturating_mul(axis))
    }

    /// Expands the grid into cells in a fixed nesting order (schemes,
    /// then fabrics, iterations, processors, caches, fault
    /// intensities). The order is part of the service contract: resume
    /// and the aggregate hash depend on resubmission enumerating
    /// identically.
    pub fn expand(&self) -> Vec<CellSpec> {
        let mut cells = Vec::with_capacity(self.cell_count().min(1 << 20));
        let (sets, assoc, line) = DEFAULT_GEOMETRY;
        for scheme in &self.schemes {
            for &fabric in &self.fabrics {
                for &iterations in &self.iterations {
                    for &processors in &self.processors {
                        for cache_word in &self.caches {
                            for &fault_pct in &self.fault_pcts {
                                let cache = parse_cache_word(cache_word, sets, assoc, line, true)
                                    .unwrap_or(CacheModel::None);
                                cells.push(CellSpec {
                                    scheme: scheme.clone(),
                                    fabric,
                                    iterations,
                                    processors,
                                    cache,
                                    fault_pct,
                                    seed: self.seed,
                                    deadline_cycles: self.deadline_cycles,
                                });
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_json_parses_back_to_the_same_cell() {
        let specs = [
            CellSpec::default(),
            CellSpec {
                scheme: "barrier".into(),
                fabric: FabricKind::Shared,
                iterations: 32,
                processors: 8,
                cache: CacheModel::private(CoherenceProtocol::Mesi).geometry(4, 1, 2),
                fault_pct: 40,
                seed: u64::MAX,
                deadline_cycles: 123_456,
            },
            CellSpec {
                cache: CacheModel::private(CoherenceProtocol::Dragon)
                    .geometry(64, 2, 4)
                    .sync_uncached(),
                ..CellSpec::default()
            },
            CellSpec {
                fabric: FabricKind::Clustered {
                    clusters: 2,
                    bridge_latency: 3,
                    coalesce_window: 7,
                },
                processors: 8,
                ..CellSpec::default()
            },
        ];
        for spec in specs {
            let back = CellSpec::parse(&spec.canonical_json()).expect("parse own canonical form");
            assert_eq!(back, spec);
            assert_eq!(back.content_hash(), spec.content_hash());
        }
    }

    #[test]
    fn hash_is_invariant_to_field_order_and_omitted_defaults() {
        let canonical = CellSpec::default().content_hash();
        // Omitting every field means the default cell.
        assert_eq!(CellSpec::parse("{}").unwrap().content_hash(), canonical);
        // Spelling out defaults changes nothing.
        let explicit = r#"{"scheme": "process", "processors": 4, "fault_pct": 0}"#;
        assert_eq!(CellSpec::parse(explicit).unwrap().content_hash(), canonical);
        // Field order is free.
        let reordered = r#"{"seed": 0, "iterations": 16, "fabric": "dedicated",
                            "scheme": "process", "deadline_cycles": 0}"#;
        assert_eq!(CellSpec::parse(reordered).unwrap().content_hash(), canonical);
        // Cache geometry on a cacheless cell is normalized away.
        let moot_geometry = r#"{"cache": "none", "cache_sets": 64}"#;
        assert_eq!(CellSpec::parse(moot_geometry).unwrap().content_hash(), canonical);
        // Cluster geometry on a flat fabric is normalized away too.
        let moot_clusters = r#"{"clusters": 8, "bridge_latency": 5}"#;
        assert_eq!(CellSpec::parse(moot_clusters).unwrap().content_hash(), canonical);
        // A clustered cell with omitted geometry means the defaults.
        let bare = CellSpec::parse(r#"{"fabric": "clustered"}"#).unwrap();
        let explicit = CellSpec::parse(
            r#"{"fabric": "clustered", "clusters": 4, "bridge_latency": 2,
                "coalesce_window": 4}"#,
        )
        .unwrap();
        assert_eq!(bare.content_hash(), explicit.content_hash());
        assert_ne!(bare.content_hash(), canonical);
    }

    #[test]
    fn flat_canonical_bytes_predate_the_clustered_fabric() {
        // A flat cell's canonical form carries no cluster fields at
        // all, so hashes journaled by pre-clustered deployments keep
        // addressing the same cached runs.
        let flat = CellSpec::default().canonical_json();
        assert!(!flat.contains("clusters"), "{flat}");
        assert!(!flat.contains("bridge_latency"), "{flat}");
        let clustered =
            CellSpec { fabric: FabricKind::clustered(4), ..CellSpec::default() }.canonical_json();
        assert!(
            clustered.contains("\"clusters\":4,\"bridge_latency\":2,\"coalesce_window\":4"),
            "{clustered}"
        );
    }

    #[test]
    fn hash_changes_for_every_semantic_field() {
        let base = CellSpec {
            cache: CacheModel::private(CoherenceProtocol::Mesi).geometry(16, 2, 4),
            ..CellSpec::default()
        };
        let variants = [
            CellSpec { scheme: "instance".into(), ..base.clone() },
            CellSpec { fabric: FabricKind::Shared, ..base.clone() },
            CellSpec { fabric: FabricKind::Ideal, ..base.clone() },
            CellSpec { iterations: 17, ..base.clone() },
            CellSpec { processors: 8, ..base.clone() },
            CellSpec { cache: CacheModel::None, ..base.clone() },
            CellSpec {
                cache: CacheModel::private(CoherenceProtocol::Dragon).geometry(16, 2, 4),
                ..base.clone()
            },
            CellSpec {
                cache: CacheModel::private(CoherenceProtocol::Mesi).geometry(4, 2, 4),
                ..base.clone()
            },
            CellSpec {
                cache: CacheModel::private(CoherenceProtocol::Mesi).geometry(16, 1, 4),
                ..base.clone()
            },
            CellSpec {
                cache: CacheModel::private(CoherenceProtocol::Mesi).geometry(16, 2, 2),
                ..base.clone()
            },
            CellSpec {
                cache: CacheModel::private(CoherenceProtocol::Mesi)
                    .geometry(16, 2, 4)
                    .sync_uncached(),
                ..base.clone()
            },
            CellSpec { fabric: FabricKind::clustered(4), ..base.clone() },
            CellSpec { fabric: FabricKind::clustered(2), ..base.clone() },
            CellSpec {
                fabric: FabricKind::Clustered {
                    clusters: 4,
                    bridge_latency: 5,
                    coalesce_window: 4,
                },
                ..base.clone()
            },
            CellSpec {
                fabric: FabricKind::Clustered {
                    clusters: 4,
                    bridge_latency: 2,
                    coalesce_window: 0,
                },
                ..base.clone()
            },
            CellSpec { fault_pct: 30, ..base.clone() },
            CellSpec { seed: 1, ..base.clone() },
            CellSpec { seed: u64::MAX, ..base.clone() },
            CellSpec { deadline_cycles: 1_000_000, ..base.clone() },
        ];
        let base_hash = base.content_hash();
        let mut seen = std::collections::HashSet::from([base_hash]);
        for v in variants {
            assert!(
                seen.insert(v.content_hash()),
                "semantic change did not change the hash: {}",
                v.canonical_json()
            );
        }
    }

    #[test]
    fn unknown_keys_and_bad_cells_are_rejected() {
        assert!(CellSpec::parse(r#"{"procesors": 4}"#).unwrap_err().contains("procesors"));
        assert!(CellSpec::parse(r#"{"scheme": "quantum"}"#).is_err());
        assert!(CellSpec::parse(r#"{"scheme": "barrier", "processors": 6}"#).is_err());
        assert!(CellSpec::parse(r#"{"processors": 1}"#).is_err());
        assert!(CellSpec::parse(r#"{"processors": 65}"#).is_err());
        assert!(CellSpec::parse(r#"{"iterations": 0}"#).is_err());
        assert!(CellSpec::parse(r#"{"fault_pct": 101}"#).is_err());
        assert!(CellSpec::parse(r#"{"cache": "snoopy"}"#).is_err());
        assert!(CellSpec::parse(r#"{"cell_spec": 2}"#).is_err());
        assert!(CellSpec::parse(r#"{"seed": -1}"#).is_err());
        let err = CellSpec::parse(r#"{"fabric": "clustered", "clusters": 3}"#).unwrap_err();
        assert!(err.contains("divide"), "{err}");
        assert!(CellSpec::parse(r#"{"fabric": "clustered", "clusters": 0}"#).is_err());
        assert!(CellSpec::parse(r#"{"fabric": "clustered", "bridge_latency": 0}"#).is_err());
        assert!(CellSpec::parse(r#"{"fabric": "dedicated", "clusters": "two"}"#).is_err());
    }

    #[test]
    fn sweep_cluster_axes_ride_in_lockstep_with_fabrics() {
        let doc = json::parse(
            r#"{"fabrics": ["dedicated", "clustered", "clustered"],
                "clusters": [0, 2, 4],
                "bridge_latencies": [0, 1, 2],
                "coalesce_windows": [0, 0, 6],
                "processors": [4, 8]}"#,
        )
        .unwrap();
        let sweep = SweepSpec::from_json(&doc).unwrap();
        assert_eq!(
            sweep.fabrics,
            vec![
                FabricKind::Dedicated,
                FabricKind::Clustered { clusters: 2, bridge_latency: 1, coalesce_window: 0 },
                FabricKind::Clustered { clusters: 4, bridge_latency: 2, coalesce_window: 6 },
            ]
        );
        let cells = sweep.expand();
        assert_eq!(cells.len(), 6);
        // The geometry lands in the expanded cells and their hashes.
        let hashes: std::collections::HashSet<String> =
            cells.iter().map(CellSpec::content_hash).collect();
        assert_eq!(hashes.len(), cells.len());
        // Omitting the geometry axes sweeps the default clustered shape.
        let doc = json::parse(r#"{"fabrics": ["clustered"], "processors": [8]}"#).unwrap();
        let sweep = SweepSpec::from_json(&doc).unwrap();
        assert_eq!(sweep.fabrics, vec![FabricKind::clustered(4)]);
    }

    #[test]
    fn sweep_expands_deterministically_in_grid_order() {
        let doc = json::parse(
            r#"{"schemes": ["process", "instance"], "fabrics": ["dedicated", "shared"],
                "iterations": [8], "fault_pcts": [0, 30], "seed": 42}"#,
        )
        .unwrap();
        let sweep = SweepSpec::from_json(&doc).unwrap();
        assert_eq!(sweep.cell_count(), 8);
        let cells = sweep.expand();
        assert_eq!(cells.len(), 8);
        assert_eq!(cells, sweep.expand(), "expansion must be deterministic");
        // Outer axis varies slowest.
        assert!(cells[..4].iter().all(|c| c.scheme == "process"));
        assert!(cells[4..].iter().all(|c| c.scheme == "instance"));
        assert_eq!(cells[0].fault_pct, 0);
        assert_eq!(cells[1].fault_pct, 30);
        assert!(cells.iter().all(|c| c.seed == 42));
        // Hashes are pairwise distinct across the grid.
        let hashes: std::collections::HashSet<String> =
            cells.iter().map(CellSpec::content_hash).collect();
        assert_eq!(hashes.len(), cells.len());
    }

    #[test]
    fn sweep_rejects_bad_axes_before_admitting_anything() {
        for bad in [
            r#"{"schemes": []}"#,
            r#"{"schemes": "process"}"#,
            r#"{"schemes": ["quantum"]}"#,
            r#"{"fabrics": ["warp"]}"#,
            r#"{"caches": ["victim"]}"#,
            r#"{"schemes": ["barrier"], "processors": [6]}"#,
            r#"{"fault_pcts": [200]}"#,
            r#"{"sweeps": 3}"#,
            // Cluster axes must pair 1:1 with fabrics…
            r#"{"fabrics": ["dedicated", "clustered"], "clusters": [2]}"#,
            // …carry zeros against flat fabrics…
            r#"{"fabrics": ["dedicated"], "clusters": [2]}"#,
            // …and divide every machine size in the sweep.
            r#"{"fabrics": ["clustered"], "clusters": [3], "processors": [4]}"#,
            r#"{"fabrics": ["clustered"], "bridge_latencies": [0]}"#,
        ] {
            let doc = json::parse(bad).unwrap();
            assert!(SweepSpec::from_json(&doc).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn hostile_cross_products_validate_without_expanding() {
        // ~1.9 billion implied cells in a small body: admission-time
        // validation must be linear in the axis lengths, not the grid.
        let mut iterations = String::new();
        for i in 1..=1000 {
            if i > 1 {
                iterations.push(',');
            }
            iterations.push_str(&i.to_string());
        }
        let fault_pcts: Vec<String> = (0..=100).map(|p| p.to_string()).collect();
        let body = format!(
            r#"{{"schemes": ["reference", "instance", "statement", "process", "barrier"],
                "fabrics": ["dedicated", "shared", "ideal"],
                "iterations": [{iterations}],
                "processors": [2, 4, 8, 16],
                "caches": ["none", "mesi", "dragon"],
                "fault_pcts": [{}]}}"#,
            fault_pcts.join(",")
        );
        let started = std::time::Instant::now();
        let sweep = SweepSpec::from_json(&json::parse(&body).unwrap()).unwrap();
        assert_eq!(sweep.cell_count(), 5 * 3 * 1000 * 4 * 3 * 101);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "validation must not expand the grid"
        );
        // An invalid element is still caught without expansion.
        let bad = body.replace("\"processors\": [2, 4, 8, 16]", "\"processors\": [2, 4, 8, 6]");
        let err = SweepSpec::from_json(&json::parse(&bad).unwrap()).unwrap_err();
        assert!(err.contains("power-of-two"), "{err}");
    }

    #[test]
    fn cell_count_saturates_instead_of_wrapping() {
        // Six axes of 2^11 elements imply 2^66 cells — past usize on
        // 64-bit targets. A wrapped count could sneak under a cap.
        let axis = 1usize << 11;
        let sweep = SweepSpec {
            schemes: vec!["process".into(); axis],
            fabrics: vec![FabricKind::Dedicated; axis],
            iterations: vec![8; axis],
            processors: vec![4; axis],
            caches: vec!["none".into(); axis],
            fault_pcts: vec![0; axis],
            seed: 0,
            deadline_cycles: 0,
        };
        assert_eq!(sweep.cell_count(), usize::MAX);
    }

    #[test]
    fn validate_axes_matches_per_cell_validation() {
        // On small grids the element-wise check must agree with
        // expanding and validating cell by cell.
        let grids = [
            r#"{"schemes": ["barrier"], "processors": [2, 4]}"#,
            r#"{"schemes": ["process", "barrier"], "processors": [4, 8], "fault_pcts": [0, 50]}"#,
        ];
        for grid in grids {
            let sweep = SweepSpec::from_json(&json::parse(grid).unwrap()).unwrap();
            assert!(sweep.validate_axes().is_ok());
            for cell in sweep.expand() {
                cell.validate().unwrap();
            }
        }
    }

    #[test]
    fn default_sweep_is_one_default_cell() {
        let doc = json::parse("{}").unwrap();
        let sweep = SweepSpec::from_json(&doc).unwrap();
        assert_eq!(sweep.cell_count(), 1);
        assert_eq!(sweep.expand(), vec![CellSpec::default()]);
    }

    #[test]
    fn fault_plan_matches_the_intensity() {
        let quiet = CellSpec::default().fault_plan();
        assert!(!quiet.is_active());
        let noisy = CellSpec { fault_pct: 50, seed: 7, ..CellSpec::default() }.fault_plan();
        assert!(noisy.is_active());
        assert_eq!(noisy.seed, 7);
        assert_eq!(noisy, FaultPlan::chaos(7, 50));
    }
}

//! Executes one sweep cell under the service's robustness ladder:
//! deadline budget → bounded retry with jittered backoff → quarantine.
//!
//! The ladder mirrors the *in-machine* recovery ladder of the sync bus
//! (NACK retransmission → watchdog repair → fallback scheme) one layer
//! up: the machine's ladder heals a run from the inside, this one
//! decides what the service does when a whole run wedges. A detected
//! deadlock or timeout gets one escalated retry (4× the cycle budget,
//! after a jittered pause seeded from the cell hash — the
//! `WaitStrategy::JitteredBackoff` idea applied to request retries); a
//! second wedge poisons the cell, and a dependence-order violation
//! poisons it immediately — determinism means retrying a wrong answer
//! can only waste the budget reproducing it.

use datasync_loopir::analysis::analyze;
use datasync_loopir::space::IterSpace;
use datasync_loopir::workpatterns::fig21_loop;
use datasync_schemes::scheme::{CompiledLoop, Scheme};
use datasync_schemes::{
    classify_run, BarrierPhased, InstanceBased, Outcome, ProcessOriented, ReferenceBased,
    StatementOriented,
};
use datasync_sim::{CacheModel, MachineConfig, RecoveryPolicy};

use crate::record::CellRecord;
use crate::spec::CellSpec;

/// Retry-budget escalation factor for the second attempt.
const RETRY_BUDGET_FACTOR: u64 = 4;

/// Maximum attempts before a wedging cell is poisoned.
const MAX_ATTEMPTS: u32 = 2;

/// The outcome of running one cell: the journalable record plus, for
/// poisoned cells, a chaos-fuzzer-format reproducer document.
#[derive(Debug, Clone)]
pub struct CellRun {
    /// The record to journal, cache and stream.
    pub record: CellRecord,
    /// `Some` exactly when the record is poisoned: a flat JSON document
    /// in the `datasync chaos --replay` format.
    pub reproducer: Option<String>,
}

/// Compiles a cell's loop under its scheme and builds its machine
/// config (budget not yet applied).
///
/// # Errors
///
/// Reports an unknown or ill-formed scheme key (normally impossible —
/// specs are validated at admission).
fn compile(spec: &CellSpec) -> Result<(CompiledLoop, MachineConfig), String> {
    let nest = fig21_loop(spec.iterations);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let x = spec.processors.max(2);
    let scheme: Box<dyn Scheme> = match spec.scheme.as_str() {
        "reference" => Box::new(ReferenceBased::new()),
        "instance" => Box::new(InstanceBased::new()),
        "statement" => Box::new(StatementOriented::new()),
        "process" => Box::new(ProcessOriented::new(x)),
        "barrier" if spec.processors.is_power_of_two() => {
            Box::new(BarrierPhased::new(spec.processors))
        }
        other => return Err(format!("unknown or ill-formed scheme key `{other}`")),
    };
    let compiled = scheme.compile(&nest, &graph, &space);
    let config = MachineConfig {
        sync_transport: scheme.natural_transport(),
        sync_fabric: spec.fabric,
        recovery: RecoveryPolicy::Full,
        cache: spec.cache,
        faults: spec.fault_plan(),
        ..MachineConfig::with_processors(spec.processors)
    };
    Ok((compiled, config))
}

/// The cell's first-attempt cycle budget: the explicit deadline
/// override, or the workload-scaled budget every other harness in the
/// workspace uses.
pub fn base_budget(spec: &CellSpec, compiled: &CompiledLoop, config: &MachineConfig) -> u64 {
    if spec.deadline_cycles > 0 {
        spec.deadline_cycles
    } else {
        config
            .max_cycles
            .max(config.scaled_max_cycles(compiled.workload.programs.len()))
    }
}

/// Deterministic per-cell backoff pause (milliseconds) before attempt
/// `attempt`: a splitmix64 draw seeded from the cell hash, so two
/// replicas retrying the same poisonous cell desynchronize instead of
/// hammering in lockstep — `WaitStrategy::JitteredBackoff`'s
/// storm-avoidance rationale at request granularity.
pub fn backoff_ms(cell_hash_fnv: u64, attempt: u32) -> u64 {
    let mut z = cell_hash_fnv.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(attempt.into()));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // Base 1 << attempt ms, jittered to [base/2, 3*base/2], capped small:
    // the service budget is cycles, not wall time.
    let base = 1u64 << attempt.min(4);
    (base / 2 + z % (base + 1)).max(1)
}

/// Runs one cell to a terminal record.
pub fn run_cell(spec: &CellSpec) -> CellRun {
    let hash = spec.content_hash();
    let (compiled, mut config) = match compile(spec) {
        Ok(pair) => pair,
        Err(why) => {
            // Admission validation makes this unreachable in the server;
            // poison rather than panic if a caller bypasses it.
            return poisoned(spec, &hash, "quarantined", 0, 1, 0, &why);
        }
    };
    let base = base_budget(spec, &compiled, &config);
    let mut attempt = 1u32;
    loop {
        let budget = base.saturating_mul(RETRY_BUDGET_FACTOR.saturating_pow(attempt - 1));
        config.max_cycles = budget;
        let outcome = classify_run(&compiled, &config);
        let (status, makespan) = match &outcome {
            Outcome::Completed { makespan, .. } => ("ok", *makespan),
            Outcome::Recovered { makespan, .. } => ("recovered", *makespan),
            Outcome::Reconfigured { makespan, .. } => ("reconfigured", *makespan),
            Outcome::Degraded { makespan, .. } => ("degraded", *makespan),
            Outcome::OrderViolation { .. } => {
                // Deterministically wrong: retrying reproduces the same
                // violation, so poison immediately.
                return poisoned(spec, &hash, "violated", 0, attempt, budget, &outcome.cell());
            }
            Outcome::DeadlockDetected { .. } | Outcome::TimedOut { .. } => {
                if attempt < MAX_ATTEMPTS {
                    let fnv = crate::hash::fnv1a(spec.canonical_json().as_bytes());
                    std::thread::sleep(std::time::Duration::from_millis(backoff_ms(fnv, attempt)));
                    attempt += 1;
                    continue;
                }
                return poisoned(spec, &hash, "quarantined", 0, attempt, budget, &outcome.cell());
            }
        };
        return CellRun {
            record: CellRecord {
                spec: spec.clone(),
                hash,
                status: status.to_string(),
                makespan,
                attempts: attempt,
                budget,
                detail: outcome.cell(),
            },
            reproducer: None,
        };
    }
}

fn poisoned(
    spec: &CellSpec,
    hash: &str,
    status: &str,
    makespan: u64,
    attempts: u32,
    budget: u64,
    detail: &str,
) -> CellRun {
    CellRun {
        record: CellRecord {
            spec: spec.clone(),
            hash: hash.to_string(),
            status: status.to_string(),
            makespan,
            attempts,
            budget,
            detail: detail.to_string(),
        },
        reproducer: Some(chaos_reproducer(spec)),
    }
}

/// Renders the cell as a flat chaos-fuzzer reproducer document — the
/// exact `ChaosCase::to_json` layout, so `datasync chaos --replay` (and
/// its new directory batch mode) re-runs a quarantined cell with full
/// mode-bit-identity and invariant checking. Hand-written here rather
/// than through `bench::chaos` to keep the dependency arrow pointing
/// bench → serve (the load generator lives in bench).
pub fn chaos_reproducer(spec: &CellSpec) -> String {
    use std::fmt::Write as _;
    let plan = spec.fault_plan();
    let mut out = String::from("{\n");
    let _ = write!(
        out,
        "  \"chaos_case\": 1,\n  \"scheme\": \"{}\",\n  \"fabric\": \"{}\",\n  \
         \"iterations\": {},\n  \"processors\": {},\n  \"seed\": {},\n",
        spec.scheme, spec.fabric, spec.iterations, spec.processors, plan.seed
    );
    let (cache_word, sets, assoc, line, sync_bit) = match spec.cache {
        CacheModel::None => ("none".to_string(), 0, 0, 0, 0),
        CacheModel::Private { protocol, sets, assoc, line_words, cache_sync, .. } => {
            (protocol.to_string(), sets, assoc, line_words, u32::from(cache_sync))
        }
    };
    let _ = writeln!(out, "  \"cache\": \"{cache_word}\",");
    for (key, val) in [
        ("cache_sets", sets),
        ("cache_assoc", assoc),
        ("cache_line", line),
        ("cache_sync", sync_bit),
        ("broadcast_delay_pct", plan.broadcast_delay_pct),
        ("broadcast_delay_max", plan.broadcast_delay_max),
        ("broadcast_reorder_pct", plan.broadcast_reorder_pct),
        ("broadcast_drop_pct", plan.broadcast_drop_pct),
        ("max_redeliveries", plan.max_redeliveries),
        ("stale_image_pct", plan.stale_image_pct),
        ("stale_window_max", plan.stale_window_max),
        ("stall_mean_interval", plan.stall_mean_interval),
        ("stall_max", plan.stall_max),
        ("data_jitter_pct", plan.data_jitter_pct),
        ("data_jitter_max", plan.data_jitter_max),
        ("broadcast_loss_pct", plan.broadcast_loss_pct),
        ("fail_stop_procs", plan.fail_stop_procs),
        ("fail_stop_window", plan.fail_stop_window),
    ] {
        let _ = writeln!(out, "  \"{key}\": {val},");
    }
    out.truncate(out.trim_end_matches(",\n").len());
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_clean_cell_completes_on_the_first_attempt() {
        let spec = CellSpec { iterations: 8, ..CellSpec::default() };
        let run = run_cell(&spec);
        assert_eq!(run.record.status, "ok");
        assert!(run.record.makespan > 0);
        assert_eq!(run.record.attempts, 1);
        assert!(run.record.budget > 0);
        assert!(run.reproducer.is_none());
        assert_eq!(run.record.hash, spec.content_hash());
    }

    #[test]
    fn cell_results_are_deterministic() {
        let spec = CellSpec { iterations: 10, fault_pct: 40, seed: 7, ..CellSpec::default() };
        let a = run_cell(&spec).record;
        let b = run_cell(&spec).record;
        assert_eq!(a.to_json(), b.to_json(), "identical specs must produce identical records");
    }

    #[test]
    fn a_starved_deadline_quarantines_after_exactly_two_attempts() {
        // A 1-cycle budget can never finish; attempt 2 runs at 4 cycles
        // and wedges too → poison, with a replayable reproducer.
        let spec = CellSpec { iterations: 8, deadline_cycles: 1, ..CellSpec::default() };
        let run = run_cell(&spec);
        assert_eq!(run.record.status, "quarantined");
        assert_eq!(run.record.attempts, 2);
        assert_eq!(run.record.budget, RETRY_BUDGET_FACTOR, "second attempt escalates 4x");
        assert!(run.record.is_poisoned());
        let doc = run.reproducer.expect("poisoned cells carry a reproducer");
        assert!(doc.starts_with("{\n  \"chaos_case\": 1,"));
        assert!(doc.contains("\"scheme\": \"process\""));
    }

    #[test]
    fn retry_escalation_rescues_a_tight_but_finishable_deadline() {
        // Find the real makespan, then set a deadline just under it:
        // attempt 1 times out, attempt 2 (4x) completes.
        let probe = CellSpec { iterations: 8, ..CellSpec::default() };
        let makespan = run_cell(&probe).record.makespan;
        let spec = CellSpec { deadline_cycles: makespan - 1, ..probe };
        let run = run_cell(&spec);
        assert_eq!(run.record.status, "ok", "{:?}", run.record);
        assert_eq!(run.record.attempts, 2);
        assert_eq!(run.record.makespan, makespan);
        assert!(run.reproducer.is_none());
    }

    #[test]
    fn backoff_is_jittered_but_deterministic() {
        let a = backoff_ms(0x1234, 1);
        assert_eq!(a, backoff_ms(0x1234, 1));
        assert!(a >= 1);
        // Different cells land on different pauses somewhere in range.
        let spread: std::collections::HashSet<u64> = (0u64..32).map(|h| backoff_ms(h, 1)).collect();
        assert!(spread.len() > 1, "jitter should spread cells out");
    }

    #[test]
    fn reproducers_cover_every_fault_field() {
        let spec = CellSpec { fault_pct: 60, seed: 99, ..CellSpec::default() };
        let doc = chaos_reproducer(&spec);
        for key in [
            "chaos_case",
            "scheme",
            "fabric",
            "iterations",
            "processors",
            "seed",
            "cache",
            "broadcast_delay_pct",
            "stale_image_pct",
            "data_jitter_pct",
            "fail_stop_procs",
        ] {
            assert!(doc.contains(&format!("\"{key}\"")), "missing {key} in:\n{doc}");
        }
        assert!(doc.contains("\"seed\": 99"));
    }
}

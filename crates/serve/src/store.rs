//! The content-addressed run store: memo cache + journal + quarantine.
//!
//! A [`RunStore`] owns the service's state directory. Completed cells
//! live in an in-memory map keyed by content hash, backed by the
//! append-only [`Journal`] for crash-safe resume. Loading re-verifies
//! **two** layers of integrity per record: the journal line's checksum
//! (transport-level damage) and the recomputed content hash of the
//! embedded spec against the stored hash (addressing-level damage — a
//! record must never be served for a cell it does not describe).
//! Quarantined cells stay in the map as poison markers, giving the
//! circuit breaker its memory across restarts; their reproducer JSONs
//! are written under `quarantine/` for offline replay.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use crate::journal::Journal;
use crate::record::CellRecord;

/// What loading the store's journal found (surfaced in `/stats` and the
/// startup log line so damage is visible, not silent).
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Records accepted into the cache.
    pub replayed: usize,
    /// Journal lines with checksum/parse damage before the tail.
    pub corrupt_lines: usize,
    /// Records whose recomputed spec hash disagreed with the stored one.
    pub integrity_failures: usize,
    /// True when the journal ended in a torn append (tolerated).
    pub truncated_tail: bool,
}

/// The service's persistent run state.
#[derive(Debug)]
pub struct RunStore {
    records: HashMap<String, CellRecord>,
    journal: Journal,
    quarantine_dir: PathBuf,
    load: LoadReport,
}

impl RunStore {
    /// Opens (creating if needed) the store under `state_dir`, replaying
    /// the journal into the memo cache.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; journal damage is tolerated and
    /// reported, never fatal.
    pub fn open(state_dir: &Path) -> std::io::Result<RunStore> {
        std::fs::create_dir_all(state_dir)?;
        let quarantine_dir = state_dir.join("quarantine");
        std::fs::create_dir_all(&quarantine_dir)?;
        let journal_path = state_dir.join("journal.log");
        let replay = Journal::replay(&journal_path)?;
        let mut load = LoadReport {
            corrupt_lines: replay.corrupt_lines,
            truncated_tail: replay.truncated_tail,
            ..LoadReport::default()
        };
        let mut records = HashMap::new();
        for payload in &replay.payloads {
            match CellRecord::parse(payload) {
                Ok(rec) => {
                    if rec.spec.content_hash() == rec.hash {
                        // Duplicate hashes keep the last occurrence
                        // (a re-journaled cell after quarantine review).
                        records.insert(rec.hash.clone(), rec);
                        load.replayed += 1;
                    } else {
                        load.integrity_failures += 1;
                    }
                }
                Err(_) => load.integrity_failures += 1,
            }
        }
        let journal = Journal::open(&journal_path)?;
        Ok(RunStore { records, journal, quarantine_dir, load })
    }

    /// What the journal replay found at open time.
    pub fn load_report(&self) -> &LoadReport {
        &self.load
    }

    /// Cached record for a content hash, if any.
    pub fn get(&self, hash: &str) -> Option<&CellRecord> {
        self.records.get(hash)
    }

    /// Number of cached records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of poisoned (quarantined/violated) records.
    pub fn poisoned(&self) -> usize {
        self.records.values().filter(|r| r.is_poisoned()).count()
    }

    /// Journals and caches a completed cell. The journal append happens
    /// first: a record the cache can see is always durable.
    ///
    /// # Errors
    ///
    /// Propagates journal write errors (the record is then *not*
    /// cached, keeping memory and disk consistent).
    pub fn insert(&mut self, record: CellRecord) -> std::io::Result<()> {
        self.journal.append(&record.to_json())?;
        self.records.insert(record.hash.clone(), record);
        Ok(())
    }

    /// Writes a quarantined cell's chaos-format reproducer JSON under
    /// `quarantine/cell_<hash>.json` for offline `datasync chaos
    /// --replay`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_reproducer(&self, hash: &str, reproducer: &str) -> std::io::Result<PathBuf> {
        let path = self.quarantine_dir.join(format!("cell_{hash}.json"));
        std::fs::write(&path, reproducer)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CellSpec;

    fn temp_dir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "datasync-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn record(iterations: i64, status: &str) -> CellRecord {
        let spec = CellSpec { iterations, ..CellSpec::default() };
        CellRecord {
            hash: spec.content_hash(),
            spec,
            status: status.into(),
            makespan: 100,
            attempts: 1,
            budget: 1_000_000,
            detail: status.into(),
        }
    }

    #[test]
    fn insert_survives_reopen() {
        let dir = temp_dir("reopen");
        {
            let mut store = RunStore::open(&dir).unwrap();
            assert!(store.is_empty());
            store.insert(record(8, "ok")).unwrap();
            store.insert(record(9, "quarantined")).unwrap();
            assert_eq!(store.len(), 2);
        }
        let store = RunStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.poisoned(), 1);
        assert_eq!(store.load_report().replayed, 2);
        assert_eq!(store.load_report().integrity_failures, 0);
        let hash = CellSpec { iterations: 8, ..CellSpec::default() }.content_hash();
        assert_eq!(store.get(&hash).unwrap().status, "ok");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hash_mismatch_is_an_integrity_failure() {
        let dir = temp_dir("integrity");
        {
            let mut store = RunStore::open(&dir).unwrap();
            let mut bad = record(8, "ok");
            // An addressing bug: the stored hash names a different cell.
            bad.hash = CellSpec { iterations: 99, ..CellSpec::default() }.content_hash();
            store.insert(bad).unwrap();
            store.insert(record(10, "ok")).unwrap();
        }
        let store = RunStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1, "the mismatched record must be dropped");
        assert_eq!(store.load_report().integrity_failures, 1);
        assert_eq!(store.load_report().replayed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_hashes_keep_the_last_record() {
        let dir = temp_dir("dup");
        {
            let mut store = RunStore::open(&dir).unwrap();
            store.insert(record(8, "quarantined")).unwrap();
            store.insert(record(8, "ok")).unwrap();
        }
        let store = RunStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.poisoned(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reproducers_land_in_the_quarantine_dir() {
        let dir = temp_dir("quarantine");
        let store = RunStore::open(&dir).unwrap();
        let path = store
            .write_reproducer("deadbeefdeadbeef", "{\n  \"chaos_case\": 1\n}\n")
            .unwrap();
        assert!(path.ends_with("quarantine/cell_deadbeefdeadbeef.json"));
        assert!(std::fs::read_to_string(&path).unwrap().contains("chaos_case"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Sweep-as-a-service: a fault-tolerant HTTP/JSONL front end for the
//! deterministic simulator.
//!
//! `datasync serve` turns the sweep machinery into a long-running
//! service: clients POST a sweep grid (scheme × fabric × workload ×
//! machine × cache × fault intensities) and receive one JSON line per
//! cell as it completes, plus a summary with an aggregate hash that
//! proves byte identity across cached, resumed and cold runs. The
//! design premise is the simulator's determinism: a cell's result is a
//! pure function of its canonical spec, so content addressing makes
//! caching exact and crash recovery a replay, never a guess.
//!
//! Robustness is layered end to end, mirroring one level up what the
//! simulated machine's recovery ladder does inside a run:
//!
//! | Layer | Module | In-machine analogue |
//! |---|---|---|
//! | deadline budgets + escalated retry | [`runner`] | NACK retransmission |
//! | jittered retry backoff | [`runner`] | `WaitStrategy::JitteredBackoff` |
//! | quarantine + circuit breaker | [`runner`], [`store`] | fallback scheme (degradation) |
//! | backpressure / load shedding | [`queue`] | SynCron-style overflow shedding |
//! | checksummed journal + resume | [`journal`], [`store`] | watchdog image repair |
//! | content-addressed memo cache | [`spec`], [`store`] | — (determinism dividend) |
//!
//! The crate is std-only like the rest of the workspace: a blocking
//! `TcpListener` polled non-blockingly, worker threads per connection,
//! and `core/par.rs` fanning cells across cores.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod hash;
pub mod http;
pub mod journal;
pub mod json;
pub mod queue;
pub mod record;
pub mod runner;
pub mod server;
pub mod signal;
pub mod spec;
pub mod store;

pub use record::{CellRecord, RECORD_SCHEMA_VERSION};
pub use runner::{run_cell, CellRun};
pub use server::{ServeConfig, ServeSummary, Server, ServerHandle, SERVE_SCHEMA_VERSION};
pub use spec::{CellSpec, SweepSpec};
pub use store::RunStore;

//! Content addressing: FNV-1a 64-bit over canonical bytes.
//!
//! Cells are memoized and journaled by the hash of their *canonical*
//! spec serialization ([`crate::spec::CellSpec::canonical_json`]), so
//! two requests that mean the same run — whatever their JSON field
//! order or omitted-default fields — address the same cache slot and
//! journal entry. FNV-1a is not cryptographic; it guards against
//! corruption and addressing mistakes, not adversaries, which is the
//! same stance the journal checksum takes.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes a byte string with FNV-1a 64.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fold(FNV_OFFSET, bytes)
}

/// Streaming FNV-1a: folds `bytes` into running state `h`. Seed with
/// [`fnv1a_seed`] and keep folding to hash a sequence of chunks (the
/// aggregate-results hash folds record lines without concatenating
/// them).
pub fn fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The initial state for [`fold`].
pub fn fnv1a_seed() -> u64 {
    FNV_OFFSET
}

/// [`fnv1a`] rendered as the fixed-width 16-hex-digit form used in
/// journal lines, cache keys and quarantine file names.
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_published_fnv1a_vectors() {
        // From the FNV reference test suite.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_form_is_fixed_width() {
        assert_eq!(fnv1a_hex(b"").len(), 16);
        assert_eq!(fnv1a_hex(b"x").len(), 16);
        assert!(fnv1a_hex(b"x").chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn nearby_inputs_diverge() {
        assert_ne!(fnv1a(b"seed: 1"), fnv1a(b"seed: 2"));
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }

    #[test]
    fn folding_chunks_equals_hashing_the_concatenation() {
        let whole = fnv1a(b"abcdef");
        let folded = fold(fold(fnv1a_seed(), b"abc"), b"def");
        assert_eq!(folded, whole);
    }
}

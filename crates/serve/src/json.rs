//! A minimal JSON reader (hand-rolled like every serializer in this
//! dependency-free workspace).
//!
//! The service's request bodies and journal lines are small documents of
//! objects, arrays, strings, booleans and **integer** numbers, so that
//! is exactly what this parser accepts. Integers are carried as `i128`
//! so the full `u64` seed range survives parsing (an `f64`-backed number
//! type would silently round seeds above 2^53 — the content hash would
//! then collide configs that differ only in their high seed bits).
//! Fractions and exponents are rejected: no field of the wire format is
//! fractional, and refusing them keeps number round-trips exact.

/// A parsed JSON value. Object member order is preserved (the canonical
/// serializer in [`crate::spec`] depends on *emitting* a fixed order,
/// never on the order it reads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the wire format has no fractional fields).
    Num(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in source order; duplicate keys keep the last
    /// occurrence (matching serde_json's default).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (`None` for other variants or a
    /// missing key). Duplicate keys resolve to the last occurrence.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an in-range number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an in-range number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object's keys, in source order (empty for non-objects).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(members) => members.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }
}

/// Parses a complete JSON document (rejecting trailing garbage).
///
/// # Errors
///
/// Returns a human-readable message with a byte offset on malformed
/// input, non-integer numbers, or nesting deeper than 32 levels.
pub fn parse(doc: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: doc.as_bytes(), at: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.at));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

const MAX_DEPTH: usize = 32;

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.at), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.at))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels at byte {}", self.at));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!("unexpected '{}' at byte {}", other as char, self.at)),
            None => Err("unexpected end of document".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(format!("malformed literal at byte {}", self.at))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.at += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(format!(
                "non-integer number at byte {start} (the wire format has no fractional fields)"
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("digits are utf-8");
        text.parse::<i128>()
            .map(Json::Num)
            .map_err(|_| format!("malformed number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(format!(
                                "unknown escape '\\{}' at byte {}",
                                other as char, self.at
                            ));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unvalidated-per-byte; the source &str is
                    // already valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape (the `\u` itself is
    /// already consumed).
    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.at..self.at + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or("truncated \\u escape")?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("malformed \\u escape at byte {}", self.at))?;
        self.at += 4;
        Ok(code)
    }

    /// Decodes one `\uXXXX` escape body into a scalar. A high surrogate
    /// must be followed by a `\uDC00`–`\uDFFF` escape and the pair is
    /// combined into its astral character; unpaired surrogates are
    /// rejected — replacing them with U+FFFD would silently corrupt
    /// client strings, and the content hash with them.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let code = self.hex4()?;
        match code {
            0xD800..=0xDBFF => {
                if self.peek() == Some(b'\\') && self.bytes.get(self.at + 1) == Some(&b'u') {
                    self.at += 2;
                    let low_at = self.at;
                    let low = self.hex4()?;
                    if !(0xDC00..=0xDFFF).contains(&low) {
                        return Err(format!(
                            "high surrogate not followed by a low surrogate at byte {low_at}"
                        ));
                    }
                    let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                    char::from_u32(combined)
                        .ok_or_else(|| format!("malformed surrogate pair at byte {low_at}"))
                } else {
                    Err(format!("unpaired high surrogate ends at byte {}", self.at))
                }
            }
            0xDC00..=0xDFFF => Err(format!("unpaired low surrogate ends at byte {}", self.at)),
            _ => char::from_u32(code)
                .ok_or_else(|| format!("invalid \\u escape ends at byte {}", self.at)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_wire_shapes() {
        let doc = r#"{"a": 1, "b": [2, 3], "c": {"d": "x", "e": true}, "f": null, "g": -7}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert_eq!(v.get("c").and_then(|c| c.get("d")).and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(|c| c.get("e")).and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("f"), Some(&Json::Null));
        assert_eq!(v.get("g").and_then(Json::as_i64), Some(-7));
        assert_eq!(v.keys(), vec!["a", "b", "c", "f", "g"]);
    }

    #[test]
    fn full_u64_seed_range_survives() {
        let doc = format!("{{\"seed\": {}}}", u64::MAX);
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("seed").and_then(Json::as_u64), Some(u64::MAX));
        // An f64-backed parser would have collapsed nearby seeds; i128
        // keeps adjacent values distinct.
        let near = format!("{{\"seed\": {}}}", u64::MAX - 1);
        assert_ne!(parse(&near).unwrap(), v);
    }

    #[test]
    fn duplicate_keys_keep_the_last() {
        let v = parse(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#"{"s": "a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\"b\\c\ndA"));
        let original = "quote\" slash\\ newline\n tab\t control\u{1}";
        let doc = format!("{{\"s\": \"{}\"}}", escape(original));
        assert_eq!(parse(&doc).unwrap().get("s").and_then(Json::as_str), Some(original));
    }

    #[test]
    fn unicode_escapes_decode_including_surrogate_pairs() {
        let v = parse(r#"{"s": "\u0041\u00e9\u4e2d"}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("A\u{e9}\u{4e2d}"));
        // A surrogate pair combines into its astral scalar, not two
        // replacement characters.
        let v = parse(r#"{"s": "\ud83d\ude00"}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("\u{1f600}"));
        let v = parse(r#"{"s": "a\ud83d\ude00b"}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\u{1f600}b"));
    }

    #[test]
    fn unpaired_surrogates_are_rejected_not_replaced() {
        for bad in [
            r#""\ud83d""#,       // lone high surrogate
            r#""\ud83dxx""#,     // high surrogate then plain text
            r#""\ud83d\n""#,     // high surrogate then a non-\u escape
            r#""\ud83d\ud83d""#, // high followed by high
            r#""\ude00""#,       // lone low surrogate
            r#""\ude00\ud83d""#, // pair in the wrong order
        ] {
            assert!(parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\"}",
            "{\"a\": }",
            "[1, ]",
            "{\"a\": 1} x",
            "nul",
            "1.5",
            "1e9",
            "\"abc",
            "{\"a\": 01x}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn rejects_absurd_nesting() {
        let deep = "[".repeat(64) + &"]".repeat(64);
        let e = parse(&deep).unwrap_err();
        assert!(e.contains("nesting"), "{e}");
    }

    #[test]
    fn empty_containers_parse() {
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse(" [ ] ").unwrap(), Json::Arr(vec![]));
    }
}

//! Bounded admission: the service's backpressure valve.
//!
//! Every sweep request must reserve its full cell count before any cell
//! runs; a reservation that would push the in-flight total past the cap
//! is refused — the server answers 429 with a `Retry-After` instead of
//! queueing unboundedly (SynCron's overflow philosophy: shed
//! predictably, never wedge). Reservations are RAII [`Ticket`]s, so a
//! connection that dies mid-stream releases its slots on unwind.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The shared admission counter.
#[derive(Debug, Clone)]
pub struct Admission {
    cap: usize,
    in_flight: Arc<AtomicUsize>,
}

/// A held reservation of `cells` slots; dropping it releases them.
#[derive(Debug)]
pub struct Ticket {
    cells: usize,
    in_flight: Arc<AtomicUsize>,
}

impl Admission {
    /// A valve admitting at most `cap` cells in flight.
    pub fn new(cap: usize) -> Admission {
        Admission { cap: cap.max(1), in_flight: Arc::new(AtomicUsize::new(0)) }
    }

    /// The configured cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Cells currently admitted.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Tries to reserve `cells` slots; `None` means shed (queue full).
    /// A request bigger than the whole cap can still be admitted onto
    /// an idle valve (it is then alone), so the cap never silently
    /// forbids a legal request size — the per-request cell cap is a
    /// separate, explicit limit.
    pub fn try_admit(&self, cells: usize) -> Option<Ticket> {
        let mut cur = self.in_flight.load(Ordering::SeqCst);
        loop {
            let admissible = cur == 0 || cur + cells <= self.cap;
            if !admissible {
                return None;
            }
            match self.in_flight.compare_exchange(
                cur,
                cur + cells,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    return Some(Ticket { cells, in_flight: Arc::clone(&self.in_flight) });
                }
                Err(actual) => cur = actual,
            }
        }
    }
}

impl Ticket {
    /// Releases `done` of this ticket's slots early (a finished chunk
    /// frees capacity before the whole request completes).
    pub fn release(&mut self, done: usize) {
        let n = done.min(self.cells);
        self.cells -= n;
        self.in_flight.fetch_sub(n, Ordering::SeqCst);
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        self.in_flight.fetch_sub(self.cells, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_the_cap_and_sheds_past_it() {
        let valve = Admission::new(10);
        let a = valve.try_admit(6).expect("6 of 10 fits");
        assert_eq!(valve.in_flight(), 6);
        let b = valve.try_admit(4).expect("10 of 10 fits");
        assert_eq!(valve.in_flight(), 10);
        assert!(valve.try_admit(1).is_none(), "the valve is full");
        drop(a);
        assert_eq!(valve.in_flight(), 4);
        assert!(valve.try_admit(6).is_some());
        drop(b);
    }

    #[test]
    fn oversized_requests_are_admitted_only_onto_an_idle_valve() {
        let valve = Admission::new(4);
        let big = valve.try_admit(100).expect("an idle valve takes any size");
        assert!(valve.try_admit(1).is_none(), "everything else sheds meanwhile");
        drop(big);
        assert!(valve.try_admit(1).is_some());
    }

    #[test]
    fn partial_release_frees_capacity_early() {
        let valve = Admission::new(10);
        let mut t = valve.try_admit(8).unwrap();
        t.release(5);
        assert_eq!(valve.in_flight(), 3);
        let other = valve.try_admit(7).expect("freed capacity admits 7 more");
        assert_eq!(valve.in_flight(), 10);
        // Over-release is clamped; drop then releases only what remains.
        t.release(100);
        assert_eq!(valve.in_flight(), 7);
        drop(t);
        assert_eq!(valve.in_flight(), 7);
        drop(other);
        assert_eq!(valve.in_flight(), 0);
    }

    #[test]
    fn tickets_release_on_unwind() {
        let valve = Admission::new(4);
        let v2 = valve.clone();
        let _ = std::panic::catch_unwind(move || {
            let _t = v2.try_admit(3).unwrap();
            panic!("connection died mid-stream");
        });
        assert_eq!(valve.in_flight(), 0, "the panicked holder's slots came back");
    }
}

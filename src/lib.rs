//! Umbrella crate for the reproduction; re-exports all member crates.
pub use datasync_core as core;
pub use datasync_loopir as loopir;
pub use datasync_schemes as schemes;
pub use datasync_sim as sim;
pub use datasync_workloads as workloads;

//! Umbrella crate for the reproduction of Su & Yew, *On Data
//! Synchronization for Multiprocessors* (ISCA 1989).
//!
//! Re-exports every member crate under a short alias so downstream code
//! (and the quickstart below) can depend on one crate:
//!
//! | Alias | Crate | Layer |
//! |---|---|---|
//! | [`loopir`] | `datasync-loopir` | loop IR, dependence analysis, sync placement |
//! | [`schemes`] | `datasync-schemes` | the five scheme families compiled onto the simulator |
//! | [`sim`] | `datasync-sim` | cycle-driven machine: fabric / memory / dispatch / recovery |
//! | [`core`] | `datasync-core` | the schemes on real threads (PC pools, barriers) |
//! | [`workloads`] | `datasync-workloads` | relaxation, FFT, PDE, random-loop generators |
//! | [`serve`] | `datasync-serve` | sweep-as-a-service: HTTP/JSONL server, journaled run cache |
//!
//! # Quickstart
//!
//! Compile the paper's Fig 2.1 loop with the improved process-oriented
//! scheme, run it on 4 simulated processors over each sync-fabric
//! backend, and check that the dedicated bus (the paper's §6 design)
//! loses nothing to a zero-latency oracle while the shared bus pays:
//!
//! ```
//! use datasync_repro::loopir::analysis::analyze;
//! use datasync_repro::loopir::space::IterSpace;
//! use datasync_repro::loopir::workpatterns::fig21_loop;
//! use datasync_repro::schemes::scheme::Scheme;
//! use datasync_repro::schemes::ProcessOriented;
//! use datasync_repro::sim::{FabricKind, MachineConfig};
//!
//! let nest = fig21_loop(16);
//! let graph = analyze(&nest);
//! let space = IterSpace::of(&nest);
//! let scheme = ProcessOriented::new(8);
//! let compiled = scheme.compile(&nest, &graph, &space);
//!
//! let mut makespans = Vec::new();
//! for kind in FabricKind::ALL {
//!     let config = MachineConfig {
//!         sync_transport: scheme.natural_transport(),
//!         ..MachineConfig::with_processors(4)
//!     }
//!     .fabric(kind);
//!     let out = compiled.run(&config).expect("run");
//!     assert!(compiled.validate(&out).is_empty(), "dependence order broken");
//!     makespans.push((kind, out.stats.makespan));
//! }
//! let by = |k: FabricKind| makespans.iter().find(|(f, _)| *f == k).unwrap().1;
//! assert!(by(FabricKind::Ideal) <= by(FabricKind::Dedicated));
//! assert!(by(FabricKind::Dedicated) <= by(FabricKind::Shared));
//! ```

#![warn(missing_docs)]

pub use datasync_core as core;
pub use datasync_loopir as loopir;
pub use datasync_schemes as schemes;
pub use datasync_serve as serve;
pub use datasync_sim as sim;
pub use datasync_workloads as workloads;

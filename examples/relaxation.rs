//! Example 1 of the paper: the four-point relaxation three ways —
//! sequential, wavefront-with-barrier, and asynchronously pipelined
//! Doacross with a group-size sweep — timed on real threads.
//!
//! Run with: `cargo run --release --example relaxation`

use datasync_workloads::relaxation::{run_pipelined, run_sequential, run_wavefront, Grid};
use std::time::Instant;

fn timed<R>(label: &str, f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("  {label:<34} {ms:>8.2} ms");
    (r, ms)
}

fn main() {
    let n = 1024;
    let threads = 4;
    println!("Four-point relaxation, {n}x{n} grid, {threads} threads\n");

    let reference = {
        let grid = Grid::new(n);
        timed("sequential", || run_sequential(&grid));
        grid.snapshot()
    };

    {
        let grid = Grid::new(n);
        let (episodes, _) =
            timed("wavefront + dissemination barrier", || run_wavefront(&grid, threads));
        assert_eq!(grid.snapshot(), reference, "wavefront diverged");
        println!("    ({episodes} barrier episodes — one per anti-diagonal)");
    }

    println!();
    for g in [1usize, 4, 16, 64, 256] {
        let grid = Grid::new(n);
        let (stats, _) =
            timed(&format!("pipelined Doacross, G = {g}"), || run_pipelined(&grid, threads, 8, g));
        assert_eq!(grid.snapshot(), reference, "pipelined diverged at G = {g}");
        println!("    ({} wait_PC, {} mark/transfer ops)", stats.waits, stats.marks);
    }

    println!(
        "\nAll methods agree bit-for-bit. The paper's Fig 5.1 claim: pipelining \
         matches the wavefront's parallel steps without barrier idling, and \
         grouping G inner iterations trades synchronization count against \
         pipeline delay."
    );
}

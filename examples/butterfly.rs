//! Example 4 of the paper: the butterfly barrier on process counters,
//! raced against the centralized counter barrier on real threads.
//!
//! Run with: `cargo run --release --example butterfly`

use datasync_core::barrier::{
    ButterflyBarrier, CounterBarrier, DisseminationBarrier, PhaseBarrier,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

fn race(barrier: &dyn PhaseBarrier, episodes: usize) -> f64 {
    let p = barrier.processors();
    let check = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for pid in 0..p {
            let check = &check;
            s.spawn(move || {
                for _ in 0..episodes {
                    check.fetch_add(1, Ordering::Relaxed);
                    barrier.wait(pid);
                }
            });
        }
    });
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(check.load(Ordering::Relaxed), (episodes * p) as u64);
    dt * 1e9 / episodes as f64 // ns per episode
}

fn main() {
    let episodes = 20_000;
    println!("barrier latency, {episodes} episodes (ns/episode):\n");
    println!("{:>4} {:>12} {:>15} {:>12}", "P", "butterfly", "dissemination", "counter");
    for p in [2usize, 4, 8] {
        let b = race(&ButterflyBarrier::new(p), episodes);
        let d = race(&DisseminationBarrier::new(p), episodes);
        let c = race(&CounterBarrier::new(p), episodes);
        println!("{p:>4} {b:>12.0} {d:>15.0} {c:>12.0}");
    }
    println!(
        "\nThe butterfly (Fig 5.4) needs no atomic read-modify-write: each \
         processor only stores to its own counter and spins on its partner's \
         — exactly mark_PC / wait_PC. The dissemination variant (the paper's \
         ref. [11]) handles any processor count."
    );
}

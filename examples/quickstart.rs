//! Quickstart: compile the paper's running example (Fig 2.1) end to end —
//! analyze dependences, remove covered ones, place the process-oriented
//! synchronization, and run it on real threads, checking bit-for-bit
//! against the sequential oracle.
//!
//! Run with: `cargo run --release --example quickstart`

use datasync_core::doacross::Doacross;
use datasync_core::planexec::run_nest;
use datasync_loopir::analysis::analyze;
use datasync_loopir::covering::reduce;
use datasync_loopir::exec::run_sequential;
use datasync_loopir::plan::SyncPlan;
use datasync_loopir::space::IterSpace;
use datasync_loopir::workpatterns::fig21_loop;

fn main() {
    let n = 1000;
    let nest = fig21_loop(n);
    println!("Loop: Fig 2.1 of Su & Yew (ISCA 1989), N = {n}\n");

    // 1. Dependence analysis.
    let graph = analyze(&nest);
    println!("Dependences found:");
    for d in graph.deps() {
        println!("  {d}");
    }

    // 2. Covered-dependence elimination.
    let reduced = reduce(&nest, &graph);
    println!("\nAfter covering ({} arcs removed):", graph.deps().len() - reduced.deps().len());
    for d in reduced.deps() {
        println!("  {d}");
    }

    // 3. Synchronization placement (the Fig 4.2.b transformation).
    let space = IterSpace::of(&nest);
    let plan = SyncPlan::build(&nest, &reduced.linearized(&space));
    println!("\nProcess-oriented placement: {} source steps per iteration", plan.n_steps());
    println!("One interior iteration lowers to:");
    for op in plan.iteration_ops(&nest, 10) {
        println!("  {op:?}");
    }

    // 4. Run on real threads with folded process counters; compare with
    //    the sequential oracle.
    let exec = Doacross::new(space.count()).threads(4).pcs(8);
    let parallel = run_nest(&exec, &nest, &plan);
    let sequential = run_sequential(&nest);
    assert_eq!(parallel, sequential, "parallel execution diverged!");
    println!(
        "\nParallel execution over 4 threads / 8 PCs matches the sequential oracle \
         ({} array cells, fingerprint {:#018x}).",
        parallel.written_len(),
        parallel.fingerprint()
    );
}

//! The paper's second Example 5 application: an explicit PDE iteration
//! where each strip synchronizes only with its neighbouring strips —
//! no global barrier per sweep.
//!
//! Run with: `cargo run --release --example pde_neighbors`

use datasync_workloads::pde::{solve_parallel, solve_sequential, PdeSync};
use std::time::Instant;

fn main() {
    let (n, sweeps, alpha) = (100_000, 400, 0.24);
    println!("1-D diffusion, {n} points, {sweeps} sweeps\n");

    let t0 = Instant::now();
    let reference = solve_sequential(n, sweeps, alpha);
    println!("  {:<28} {:>8.2} ms", "sequential", t0.elapsed().as_secs_f64() * 1e3);

    for workers in [2usize, 4, 8] {
        for sync in [PdeSync::Neighbors, PdeSync::GlobalBarrier] {
            let t0 = Instant::now();
            let got = solve_parallel(n, sweeps, alpha, workers, sync);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            assert_eq!(got, reference, "diverged: {} w={workers}", sync.name());
            println!("  {:<28} {ms:>8.2} ms", format!("{} x{workers}", sync.name()));
        }
    }
    println!(
        "\nAll runs bit-identical. With neighbour-only waiting, a slow strip \
         delays only its neighbours (and transitively), never the whole \
         machine — the paper's point about computations with local \
         communication."
    );
}

//! A tour of the paper's scheme taxonomy: run the Fig 2.1 loop on the
//! simulated multiprocessor under all four scheme families and print the
//! Section 3 comparison.
//!
//! Run with: `cargo run --release --example scheme_tour`

use datasync_loopir::analysis::analyze;
use datasync_loopir::space::IterSpace;
use datasync_loopir::workpatterns::fig21_loop;
use datasync_schemes::compare::compare_all;
use datasync_sim::MachineConfig;

fn main() {
    let n = 96;
    let procs = 4;
    let x = 8;
    let nest = fig21_loop(n);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let base = MachineConfig::with_processors(procs);

    println!("Fig 2.1 loop, N = {n}, P = {procs}, X = {x}\n");
    println!(
        "{:<34} {:>9} {:>8} {:>9} {:>8} {:>7} {:>10}",
        "scheme", "sync vars", "init", "makespan", "speedup", "util%", "violations"
    );
    for r in compare_all(&nest, &graph, &space, &base, x).expect("simulation failed") {
        println!(
            "{:<34} {:>9} {:>8} {:>9} {:>8.2} {:>7.1} {:>10}",
            r.scheme,
            r.sync_vars,
            r.init_ops,
            r.makespan,
            r.speedup,
            r.utilization * 100.0,
            r.violations
        );
        assert_eq!(r.violations, 0, "{} violated a dependence", r.scheme);
    }
    println!(
        "\nStorage is the story (Section 3): data-oriented schemes pay one key \
         per element (and the instance-based scheme one cell per reader), the \
         statement-oriented scheme one counter per source statement, the \
         process-oriented scheme only X = {x} counters regardless of N."
    );
}

//! The "new paradigm in parallel programming" the paper's Section 5
//! closing remarks suggest: process counters as a general ordering
//! primitive, outside loop compilation.
//!
//! Here: a parallel text processor. Worker threads grab lines in any
//! order and do the expensive part (here: checksum + formatting)
//! concurrently, but the *emission* of results is ordered by a
//! distance-1 wait_PC chain — no collecting, no sorting, no channels;
//! output streams in order as soon as it is ready.
//!
//! Run with: `cargo run --release --example ordered_pipeline`

use datasync_core::doacross::Doacross;
use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

fn expensive_transform(line: usize, text: &str) -> String {
    // Simulate real work: a toy checksum loop.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for _ in 0..2_000 {
        for b in text.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
    }
    format!("{line:>5}  {h:016x}  {text}")
}

fn main() {
    let lines: Vec<String> = (0..2_000)
        .map(|i| format!("record {i}: {}", "lorem ipsum dolor sit amet ".repeat(1 + i % 3)))
        .collect();

    let out = Mutex::new(Vec::<u8>::new());
    let t0 = Instant::now();
    Doacross::new(lines.len() as u64).threads(8).pcs(16).run(|i, ctx| {
        // Parallel phase: no synchronization at all.
        let rendered = expensive_transform(i as usize, &lines[i as usize]);
        // Ordered phase: wait for the previous line to have been emitted.
        ctx.wait(1, 1);
        {
            let mut sink = out.lock().expect("sink");
            writeln!(sink, "{rendered}").expect("write");
        }
        ctx.mark(1); // emission complete
    });
    let dt = t0.elapsed().as_secs_f64() * 1e3;

    // Verify the output really is in order.
    let bytes = out.into_inner().expect("sink");
    let text = String::from_utf8(bytes).expect("utf8");
    let emitted: Vec<usize> = text
        .lines()
        .map(|l| l.split_whitespace().next().unwrap().parse().unwrap())
        .collect();
    assert_eq!(emitted.len(), lines.len());
    assert!(emitted.windows(2).all(|w| w[0] + 1 == w[1]), "output out of order!");

    println!(
        "processed {} lines in {dt:.1} ms on 8 threads — transforms ran in \
         parallel, emission stayed strictly ordered via one wait_PC(1)/mark_PC \
         pair per line (16 process counters total).",
        lines.len()
    );
    println!("first line:  {}", text.lines().next().unwrap());
    println!("last line:   {}", text.lines().last().unwrap());
}

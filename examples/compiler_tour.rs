//! A tour of the compiler substrate: dependence analysis, covering,
//! profitability, the wavefront transformation, unrolling, and the
//! generated Doacross listing — on three different loops.
//!
//! Run with: `cargo run --release --example compiler_tour`

use datasync_loopir::analysis::analyze;
use datasync_loopir::covering::reduce;
use datasync_loopir::ir::{AccessKind, ArrayId, ArrayRef, LoopNestBuilder};
use datasync_loopir::plan::SyncPlan;
use datasync_loopir::profit::analyze_doacross;
use datasync_loopir::render::{render_doacross, render_loop};
use datasync_loopir::space::IterSpace;
use datasync_loopir::transform::unroll;
use datasync_loopir::wavefront::wavefront_schedule;
use datasync_loopir::workpatterns::{example1_relaxation, fig21_loop};

fn main() {
    // 1. The running example: analysis -> covering -> plan -> listing.
    let nest = fig21_loop(64);
    println!("=== Fig 2.1 ===\n{}", render_loop(&nest));
    let graph = analyze(&nest);
    let reduced = reduce(&nest, &graph);
    println!("{} dependences, {} after covering", graph.deps().len(), reduced.deps().len());
    let space = IterSpace::of(&nest);
    let linear = reduced.linearized(&space);
    println!("\n{}", render_doacross(&nest, &SyncPlan::build(&nest, &linear)));

    // 2. Profitability: compare against a tight recurrence.
    let decision = analyze_doacross(&nest, &linear);
    println!(
        "Fig 2.1: delay {} / iteration {} cycles -> speedup {:.2} on 8 procs",
        decision.delay,
        decision.iteration_time,
        decision.speedup(64, 8)
    );
    let a = ArrayId(0);
    let chain = LoopNestBuilder::new(1, 64)
        .stmt(
            "S",
            10,
            vec![
                ArrayRef::simple(a, AccessKind::Read, -1),
                ArrayRef::simple(a, AccessKind::Write, 0),
            ],
        )
        .build();
    let chain_space = IterSpace::of(&chain);
    let chain_graph = reduce(&chain, &analyze(&chain)).linearized(&chain_space);
    let chain_decision = analyze_doacross(&chain, &chain_graph);
    println!(
        "A[I]=A[I-1]: delay {} -> speedup {:.2} on 8 procs — {}",
        chain_decision.delay,
        chain_decision.speedup(64, 8),
        if chain_decision.profitable(64, 8, 1.5) {
            "run as Doacross"
        } else {
            "leave serial (the Section 1 decision)"
        }
    );

    // 3. Wavefront transformation of the relaxation loop.
    let relax = example1_relaxation(12, 4);
    let rgraph = analyze(&relax);
    let rspace = IterSpace::of(&relax);
    let ws = wavefront_schedule(&rgraph, &rspace).expect("relaxation is schedulable");
    println!(
        "\n=== Example 1 wavefront ===\nlambda = {:?}: {} wavefronts, widest {}",
        ws.lambda,
        ws.parallel_steps(),
        ws.max_width()
    );

    // 4. Unrolling as compiler-side G-grouping.
    println!("\n=== unrolling Fig 2.1 ===");
    for factor in [1u32, 2, 4, 8] {
        let un = unroll(&fig21_loop(64), factor);
        let s = IterSpace::of(&un);
        let plan = SyncPlan::build(&un, &reduce(&un, &analyze(&un)).linearized(&s));
        println!(
            "  factor {factor}: {} iterations x {} sync steps = {} total PC updates",
            s.count(),
            plan.n_steps(),
            s.count() * u64::from(plan.n_steps())
        );
    }
}

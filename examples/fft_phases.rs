//! Example 5 of the paper: a parallel FFT whose stages synchronize either
//! pairwise (`mark_PC` / `wait_PC` with the stage partner) or with a
//! global barrier — verified against a naive DFT and timed.
//!
//! Run with: `cargo run --release --example fft_phases`

use datasync_core::phased::PhaseSync;
use datasync_workloads::fft::{max_error, naive_dft, parallel_fft, sequential_fft};
use datasync_workloads::Complex;
use std::time::Instant;

fn main() {
    // Small verification round against the O(n^2) DFT.
    let small: Vec<Complex> = (0..256)
        .map(|i| {
            let t = i as f64 / 256.0;
            Complex::new(
                (2.0 * std::f64::consts::PI * 5.0 * t).sin(),
                0.5 * (2.0 * std::f64::consts::PI * 11.0 * t).cos(),
            )
        })
        .collect();
    let dft = naive_dft(&small);
    let err = max_error(&parallel_fft(&small, 4, PhaseSync::Pairwise), &dft);
    println!("verification vs naive DFT (n=256): max error {err:.2e}\n");
    assert!(err < 1e-9);

    // Timing sweep.
    let n: usize = 1 << 16;
    let x: Vec<Complex> = (0..n)
        .map(|i| Complex::new((i as f64 * 0.0137).sin(), (i as f64 * 0.0071).cos()))
        .collect();
    let reference = sequential_fft(&x);
    println!("parallel FFT, n = {n} points ({} stages):", n.trailing_zeros());
    println!("{:>8} {:>22} {:>10} {:>12}", "workers", "sync", "time", "exact?");
    for workers in [1usize, 2, 4, 8] {
        for sync in [PhaseSync::Pairwise, PhaseSync::GlobalDissemination, PhaseSync::GlobalCounter]
        {
            let t0 = Instant::now();
            let out = parallel_fft(&x, workers, sync);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            let exact = max_error(&out, &reference) == 0.0;
            println!("{workers:>8} {:>22} {ms:>8.2}ms {exact:>12}", sync.name());
            assert!(exact, "FFT must be bit-identical across sync policies");
        }
    }
    println!(
        "\nThe paper's Example 5: each stage exchanges data with one partner \
         (pid xor 2^stage), so pairwise PC synchronization suffices — no \
         global barrier needed."
    );
}

//! Fault injection: deliberately break synchronization and check that
//! the detection machinery — trace validation, deadlock detection, the
//! order-sensitive oracle — actually catches it. A validator that cannot
//! fail is not evidence of correctness.

use datasync_loopir::analysis::analyze;
use datasync_loopir::ir::StmtId;
use datasync_loopir::space::IterSpace;
use datasync_loopir::workpatterns::fig21_loop;
use datasync_schemes::scheme::{CostFn, Scheme};
use datasync_schemes::ProcessOriented;
use datasync_sim::{Instr, MachineConfig, SimError};

/// A cost function that makes one iteration dramatically slow, so any
/// missing synchronization lets later iterations race past it.
fn skewed() -> impl Fn(StmtId, u64) -> u32 {
    |_s, pid| if pid == 5 { 500 } else { 2 }
}

/// Strips every `SyncWait` from compiled programs (keeps everything else).
fn drop_waits(compiled: &mut datasync_schemes::CompiledLoop) {
    for prog in &mut compiled.workload.programs {
        prog.instrs.retain(|i| !matches!(i, Instr::SyncWait { .. }));
    }
}

/// Strips every sync write (marks/transfers) from compiled programs.
fn drop_marks(compiled: &mut datasync_schemes::CompiledLoop) {
    for prog in &mut compiled.workload.programs {
        prog.instrs
            .retain(|i| !matches!(i, Instr::SyncSet { .. } | Instr::SyncSetIfGeq { .. }));
    }
}

#[test]
fn removing_waits_is_detected_by_the_trace_validator() {
    let nest = fig21_loop(40);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let cost = skewed();
    let cost_ref: CostFn<'_> = &cost;
    let mut compiled =
        ProcessOriented::new(8).compile_with(&nest, &graph, &space, Some(cost_ref));
    drop_waits(&mut compiled);
    let out = compiled.run(&MachineConfig::with_processors(4)).expect("runs fine, just wrong");
    let violations = compiled.validate(&out);
    assert!(
        !violations.is_empty(),
        "a scheme with no waits must violate dependences around the slow iteration"
    );
}

#[test]
fn intact_scheme_passes_under_the_same_skew() {
    // Control: with its waits intact, the same skewed workload validates.
    let nest = fig21_loop(40);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let cost = skewed();
    let cost_ref: CostFn<'_> = &cost;
    let compiled = ProcessOriented::new(8).compile_with(&nest, &graph, &space, Some(cost_ref));
    let out = compiled.run(&MachineConfig::with_processors(4)).expect("simulation failed");
    assert!(compiled.validate(&out).is_empty());
}

#[test]
fn removing_marks_deadlocks_and_is_reported() {
    let nest = fig21_loop(40);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let mut compiled = ProcessOriented::new(8).compile(&nest, &graph, &space);
    drop_marks(&mut compiled);
    match compiled.run(&MachineConfig::with_processors(4)) {
        Err(SimError::Deadlock { spinning, .. }) => {
            assert!(!spinning.is_empty(), "deadlock must name the stuck processors");
        }
        Err(SimError::Timeout { .. }) => {} // also acceptable detection
        other => panic!("waits without marks must hang, got {other:?}"),
    }
}

#[test]
fn weakened_wait_steps_are_detected() {
    // Lower every wait threshold by two steps: sinks release too early
    // around the slow iteration.
    let nest = fig21_loop(48);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let cost = skewed();
    let cost_ref: CostFn<'_> = &cost;
    let mut compiled =
        ProcessOriented::basic(8).compile_with(&nest, &graph, &space, Some(cost_ref));
    for prog in &mut compiled.workload.programs {
        for i in &mut prog.instrs {
            if let Instr::SyncWait { pred: datasync_sim::Pred::Geq(v), .. } = i {
                // Drop the step requirement entirely (keep the owner part).
                *v &= !0xffff_ffff;
            }
        }
    }
    let out = compiled.run(&MachineConfig::with_processors(8)).expect("still terminates");
    let violations = compiled.validate(&out);
    assert!(!violations.is_empty(), "step-free waits must be caught");
}

#[test]
fn oracle_catches_a_missing_wait_on_real_threads() {
    // Run the Fig 2.1 loop on real threads with the dist-1 waits removed:
    // the order-sensitive store comparison must (overwhelmingly) fail.
    // One lucky schedule could still match, so try a few rounds.
    use datasync_core::doacross::Doacross;
    use datasync_core::planexec::SharedArrayStore;
    use datasync_loopir::exec::{run_sequential, stmt_value};
    use datasync_loopir::plan::{IterOp, PcOp, SyncPlan};

    let nest = fig21_loop(300);
    let space = IterSpace::of(&nest);
    let graph = datasync_loopir::covering::reduce(&nest, &analyze(&nest)).linearized(&space);
    let plan = SyncPlan::build(&nest, &graph);
    let sequential = run_sequential(&nest);

    let mut any_divergence = false;
    for _round in 0..5 {
        let store = SharedArrayStore::new();
        let exec = Doacross::new(space.count()).threads(4).pcs(8);
        exec.run(|pid, ctx| {
            let indices = space.indices(pid);
            for op in plan.iteration_ops(&nest, pid) {
                match op {
                    IterOp::Wait(w) if w.dist == 1 => {} // sabotage: skip
                    IterOp::Wait(w) => ctx.wait(w.dist as u64, w.step),
                    IterOp::Exec(s) => {
                        // Make some iterations slow so the skipped waits
                        // actually race (deterministic skew).
                        if pid % 7 == 3 && s.0 == 0 {
                            std::thread::sleep(std::time::Duration::from_micros(200));
                        }
                        let stmt = nest.stmt(s);
                        let reads: Vec<u64> = stmt
                            .reads()
                            .map(|r| store.read(r.array, &r.element(&indices)))
                            .collect();
                        let v = stmt_value(stmt, &indices, &reads);
                        for w in stmt.writes() {
                            store.write(w.array, w.element(&indices), v);
                        }
                    }
                    IterOp::Pc(PcOp::Mark(step)) => ctx.mark(step),
                    IterOp::Pc(PcOp::Transfer) => ctx.transfer(),
                }
            }
        });
        if store.into_store() != sequential {
            any_divergence = true;
            break;
        }
    }
    assert!(any_divergence, "skipping dist-1 waits should corrupt the result");
}

//! Fault injection: deliberately break synchronization and check that
//! the detection machinery — trace validation, deadlock detection, the
//! order-sensitive oracle — actually catches it. A validator that cannot
//! fail is not evidence of correctness.

use datasync_loopir::analysis::analyze;
use datasync_loopir::ir::StmtId;
use datasync_loopir::space::IterSpace;
use datasync_loopir::workpatterns::fig21_loop;
use datasync_schemes::scheme::{CostFn, Scheme};
use datasync_schemes::{InstanceBased, ProcessOriented, ReferenceBased, StatementOriented};
use datasync_sim::{
    FaultClass, FaultPlan, Instr, MachineConfig, Pred, Program, RecoveryPolicy, SimError, Workload,
};

/// A cost function that makes one iteration dramatically slow, so any
/// missing synchronization lets later iterations race past it.
fn skewed() -> impl Fn(StmtId, u64) -> u32 {
    |_s, pid| if pid == 5 { 500 } else { 2 }
}

/// Every Section 3 scheme, boxed for uniform sabotage sweeps.
fn all_schemes() -> Vec<Box<dyn Scheme>> {
    vec![
        Box::new(StatementOriented::new()),
        Box::new(ProcessOriented::new(8)),
        Box::new(InstanceBased::new()),
        Box::new(ReferenceBased::new()),
    ]
}

/// Strips every wait from compiled programs: removes `SyncWait` and
/// neutralizes the test half of `KeyedAccess` (geq 0 is always
/// satisfied), so reference-based programs also stop waiting while
/// keeping their accesses and trace notes.
fn drop_waits(compiled: &mut datasync_schemes::CompiledLoop) {
    for prog in &mut compiled.workload.programs {
        prog.instrs.retain(|i| !matches!(i, Instr::SyncWait { .. }));
        for i in &mut prog.instrs {
            if let Instr::KeyedAccess { geq, .. } = i {
                *geq = 0;
            }
        }
    }
}

/// Strips every sync write (marks/transfers/increments) from compiled
/// programs, leaving the waits to spin forever.
fn drop_marks(compiled: &mut datasync_schemes::CompiledLoop) {
    for prog in &mut compiled.workload.programs {
        prog.instrs.retain(|i| {
            !matches!(i, Instr::SyncSet { .. } | Instr::SyncSetIfGeq { .. } | Instr::SyncRmw { .. })
        });
    }
}

#[test]
fn removing_waits_is_detected_by_the_trace_validator() {
    let nest = fig21_loop(40);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let cost = skewed();
    let cost_ref: CostFn<'_> = &cost;
    let mut compiled = ProcessOriented::new(8).compile_with(&nest, &graph, &space, Some(cost_ref));
    drop_waits(&mut compiled);
    let out = compiled.run(&MachineConfig::with_processors(4)).expect("runs fine, just wrong");
    let violations = compiled.validate(&out);
    assert!(
        !violations.is_empty(),
        "a scheme with no waits must violate dependences around the slow iteration"
    );
}

#[test]
fn intact_scheme_passes_under_the_same_skew() {
    // Control: with its waits intact, the same skewed workload validates.
    let nest = fig21_loop(40);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let cost = skewed();
    let cost_ref: CostFn<'_> = &cost;
    let compiled = ProcessOriented::new(8).compile_with(&nest, &graph, &space, Some(cost_ref));
    let out = compiled.run(&MachineConfig::with_processors(4)).expect("simulation failed");
    assert!(compiled.validate(&out).is_empty());
}

#[test]
fn removing_marks_deadlocks_and_is_reported() {
    let nest = fig21_loop(40);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let mut compiled = ProcessOriented::new(8).compile(&nest, &graph, &space);
    drop_marks(&mut compiled);
    match compiled.run(&MachineConfig::with_processors(4)) {
        Err(SimError::Deadlock { spinning, .. }) => {
            assert!(!spinning.is_empty(), "deadlock must name the stuck processors");
        }
        Err(SimError::Timeout { .. }) => {} // also acceptable detection
        other => panic!("waits without marks must hang, got {other:?}"),
    }
}

#[test]
fn weakened_wait_steps_are_detected() {
    // Lower every wait threshold by two steps: sinks release too early
    // around the slow iteration.
    let nest = fig21_loop(48);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let cost = skewed();
    let cost_ref: CostFn<'_> = &cost;
    let mut compiled =
        ProcessOriented::basic(8).compile_with(&nest, &graph, &space, Some(cost_ref));
    for prog in &mut compiled.workload.programs {
        for i in &mut prog.instrs {
            if let Instr::SyncWait { pred: datasync_sim::Pred::Geq(v), .. } = i {
                // Drop the step requirement entirely (keep the owner part).
                *v &= !0xffff_ffff;
            }
        }
    }
    let out = compiled.run(&MachineConfig::with_processors(8)).expect("still terminates");
    let violations = compiled.validate(&out);
    assert!(!violations.is_empty(), "step-free waits must be caught");
}

#[test]
fn removing_waits_is_detected_for_every_scheme() {
    let nest = fig21_loop(40);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let cost = skewed();
    let cost_ref: CostFn<'_> = &cost;
    for scheme in all_schemes() {
        let mut compiled = scheme.compile_with(&nest, &graph, &space, Some(cost_ref));
        drop_waits(&mut compiled);
        let out = compiled.run(&MachineConfig::with_processors(4)).unwrap_or_else(|e| {
            panic!("{}: wait-free programs still run, got {e:?}", scheme.name())
        });
        assert!(
            !compiled.validate(&out).is_empty(),
            "{}: stripping every wait must violate dependences around the slow iteration",
            scheme.name()
        );
    }
}

#[test]
fn removing_marks_hangs_every_scheme_with_separable_marks() {
    // The reference-based scheme fuses its mark (the key increment) into
    // the access itself, so it has nothing separable to strip; it is
    // covered by the wait-neutralizing test above.
    let schemes: Vec<Box<dyn Scheme>> = vec![
        Box::new(StatementOriented::new()),
        Box::new(ProcessOriented::new(8)),
        Box::new(InstanceBased::new()),
    ];
    let nest = fig21_loop(40);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    for scheme in schemes {
        let mut compiled = scheme.compile(&nest, &graph, &space);
        drop_marks(&mut compiled);
        match compiled.run(&MachineConfig::with_processors(4)) {
            Err(SimError::Deadlock { spinning, .. }) => {
                assert!(
                    !spinning.is_empty(),
                    "{}: deadlock must name the stuck processors",
                    scheme.name()
                );
            }
            Err(SimError::Timeout { .. }) => {} // also acceptable detection
            other => panic!("{}: waits without marks must hang, got {other:?}", scheme.name()),
        }
    }
}

#[test]
fn same_fault_seed_reproduces_identical_stats_for_every_scheme() {
    // A chaos-faulted run is still a pure function of (config, workload):
    // re-running with the same seed must reproduce every statistic,
    // including the injected-fault counts and recovery latencies.
    let nest = fig21_loop(40);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let config = MachineConfig {
        max_cycles: 3_000_000,
        faults: FaultPlan::chaos(2024, 40),
        ..MachineConfig::with_processors(4)
    };
    for scheme in all_schemes() {
        let compiled = scheme.compile(&nest, &graph, &space);
        let a = compiled.run(&config).unwrap_or_else(|e| {
            panic!("{}: bounded chaos at 40% must still complete, got {e:?}", scheme.name())
        });
        let b = compiled.run(&config).expect("second run of the same pure function");
        assert_eq!(a.stats, b.stats, "{}: same seed, same stats", scheme.name());
        assert!(
            a.stats.faults.total() > 0,
            "{}: chaos at 40% must actually inject faults",
            scheme.name()
        );
        assert!(
            compiled.validate(&a).is_empty(),
            "{}: bounded faults may cost cycles but never break order",
            scheme.name()
        );
    }
}

#[test]
fn different_fault_seeds_diverge() {
    let nest = fig21_loop(40);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let compiled = ProcessOriented::new(8).compile(&nest, &graph, &space);
    let run = |seed: u64| {
        let config = MachineConfig {
            max_cycles: 3_000_000,
            faults: FaultPlan::chaos(seed, 40),
            ..MachineConfig::with_processors(4)
        };
        compiled.run(&config).expect("bounded chaos completes").stats
    };
    assert_ne!(run(1), run(2), "different seeds must shake the machine differently");
}

#[test]
fn dropping_the_final_broadcast_still_delivers_within_the_cap() {
    // The nastiest drop is the *last* broadcast a waiter needs: nothing
    // later will ever touch the variable, so eventual delivery must come
    // from the redelivery bound alone. At 100% drop probability the
    // message is dropped on every grant until the cap, then forced
    // through — exactly `max_redeliveries` drops, never a wedge.
    let producer = Program::from_instrs(vec![Instr::Compute(5), Instr::SyncSet { var: 0, val: 1 }]);
    let consumer = Program::from_instrs(vec![Instr::SyncWait { var: 0, pred: Pred::Geq(1) }]);
    let workload = Workload::static_assigned(vec![producer, consumer], vec![vec![0], vec![1]]);
    let plan = FaultPlan::only(FaultClass::BroadcastDrop, 11, 100);
    let config = MachineConfig::with_processors(2).with_faults(plan);
    let out = datasync_sim::run(&config, &workload).expect("bounded drops must complete");
    assert_eq!(out.sync_final[0], 1, "the final broadcast must eventually deliver");
    assert_eq!(
        out.stats.faults.dropped_broadcasts,
        u64::from(plan.max_redeliveries),
        "a certain drop fires exactly once per allowed redelivery"
    );
    assert!(out.stats.faults.recovery_cycles > 0, "the waiter paid for the redeliveries");
}

#[test]
fn back_to_back_drops_never_regress_an_overtaken_counter() {
    // Two posts to the same monotonic counter from different processors:
    // when drops hold the older value back long enough for the newer one
    // to perform first, the late redelivery must be discarded as stale —
    // applying it would regress the counter below what the waiter
    // already observed. Sweep seeds so both interleavings occur.
    let run_seed = |seed: u64| {
        let p0 = Program::from_instrs(vec![Instr::SyncSet { var: 0, val: 1 }]);
        let p1 = Program::from_instrs(vec![Instr::Compute(2), Instr::SyncSet { var: 0, val: 2 }]);
        let waiter = Program::from_instrs(vec![Instr::SyncWait { var: 0, pred: Pred::Geq(2) }]);
        let workload =
            Workload::static_assigned(vec![p0, p1, waiter], vec![vec![0], vec![1], vec![2]]);
        let config = MachineConfig::with_processors(3).with_faults(FaultPlan::only(
            FaultClass::BroadcastDrop,
            seed,
            70,
        ));
        datasync_sim::run(&config, &workload).expect("bounded drops must complete")
    };
    let mut saw_stale_discard = false;
    let mut saw_back_to_back = false;
    for seed in 0..40u64 {
        let out = run_seed(seed);
        assert_eq!(
            out.sync_final[0], 2,
            "seed {seed}: a stale redelivery must never regress the counter"
        );
        saw_stale_discard |= out.stats.faults.stale_deliveries_discarded > 0;
        // Two messages, three redeliveries each: > 3 drops means at
        // least one message was dropped on consecutive grants.
        saw_back_to_back |= out.stats.faults.dropped_broadcasts > 3;
    }
    assert!(saw_stale_discard, "some seed must overtake a dropped post");
    assert!(saw_back_to_back, "some seed must drop the same message repeatedly");
}

#[test]
fn drops_during_the_fallback_run_still_degrade_cleanly() {
    // Degradation re-runs the loop on the conservative scheme *with the
    // same fault plan*: the fallback machine also suffers broadcast
    // drops. A bounded class must not stop the fallback from carrying
    // the run, so the classifier still reports Degraded.
    use datasync_schemes::robustness::{classify_with_fallback, Outcome};
    use datasync_schemes::BarrierPhased;
    let nest = fig21_loop(12);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let mut sabotaged = ProcessOriented::new(8).compile(&nest, &graph, &space);
    drop_marks(&mut sabotaged);
    let fb_scheme = BarrierPhased::new(4);
    let fallback = fb_scheme.compile(&nest, &graph, &space);
    let plan = FaultPlan::only(FaultClass::BroadcastDrop, 5, 85);
    let config = MachineConfig {
        max_cycles: 1_000_000,
        recovery: RecoveryPolicy::Full,
        ..MachineConfig::with_processors(4)
    }
    .with_faults(plan);
    let fb_config =
        MachineConfig { sync_transport: fb_scheme.natural_transport(), ..config.clone() };
    let outcome =
        classify_with_fallback(&sabotaged, &config, &fb_scheme.name(), &fallback, &fb_config);
    match outcome {
        Outcome::Degraded { fallback, makespan, .. } => {
            assert_eq!(fallback, fb_scheme.name());
            assert!(makespan > 0);
        }
        other => panic!("fallback under bounded drops must still carry the run, got {other:?}"),
    }
}

#[test]
fn oracle_catches_a_missing_wait_on_real_threads() {
    // Run the Fig 2.1 loop on real threads with the dist-1 waits removed:
    // the order-sensitive store comparison must (overwhelmingly) fail.
    // One lucky schedule could still match, so try a few rounds.
    use datasync_core::doacross::Doacross;
    use datasync_core::planexec::SharedArrayStore;
    use datasync_loopir::exec::{run_sequential, stmt_value};
    use datasync_loopir::plan::{IterOp, PcOp, SyncPlan};

    let nest = fig21_loop(300);
    let space = IterSpace::of(&nest);
    let graph = datasync_loopir::covering::reduce(&nest, &analyze(&nest)).linearized(&space);
    let plan = SyncPlan::build(&nest, &graph);
    let sequential = run_sequential(&nest);

    let mut any_divergence = false;
    for _round in 0..5 {
        let store = SharedArrayStore::new();
        let exec = Doacross::new(space.count()).threads(4).pcs(8);
        exec.run(|pid, ctx| {
            let indices = space.indices(pid);
            for op in plan.iteration_ops(&nest, pid) {
                match op {
                    IterOp::Wait(w) if w.dist == 1 => {} // sabotage: skip
                    IterOp::Wait(w) => ctx.wait(w.dist as u64, w.step),
                    IterOp::Exec(s) => {
                        // Make some iterations slow so the skipped waits
                        // actually race (deterministic skew).
                        if pid % 7 == 3 && s.0 == 0 {
                            std::thread::sleep(std::time::Duration::from_micros(200));
                        }
                        let stmt = nest.stmt(s);
                        let reads: Vec<u64> = stmt
                            .reads()
                            .map(|r| store.read(r.array, &r.element(&indices)))
                            .collect();
                        let v = stmt_value(stmt, &indices, &reads);
                        for w in stmt.writes() {
                            store.write(w.array, w.element(&indices), v);
                        }
                    }
                    IterOp::Pc(PcOp::Mark(step)) => ctx.mark(step),
                    IterOp::Pc(PcOp::Transfer) => ctx.transfer(),
                }
            }
        });
        if store.into_store() != sequential {
            any_divergence = true;
            break;
        }
    }
    assert!(any_divergence, "skipping dist-1 waits should corrupt the result");
}

//! Integration tests of the Section 5 applications on real threads.

use datasync_core::barrier::{
    ButterflyBarrier, CounterBarrier, DisseminationBarrier, PhaseBarrier,
};
use datasync_core::phased::PhaseSync;
use datasync_workloads::fft::{max_error, naive_dft, parallel_fft, sequential_fft};
use datasync_workloads::relaxation::{run_pipelined, run_sequential, run_wavefront, Grid};
use datasync_workloads::Complex;

#[test]
fn relaxation_three_ways_agree() {
    let n = 48;
    let reference = {
        let g = Grid::new(n);
        run_sequential(&g);
        g.snapshot()
    };
    let wavefront = {
        let g = Grid::new(n);
        run_wavefront(&g, 4);
        g.snapshot()
    };
    let pipelined = {
        let g = Grid::new(n);
        run_pipelined(&g, 4, 8, 4);
        g.snapshot()
    };
    assert_eq!(wavefront, reference);
    assert_eq!(pipelined, reference);
}

#[test]
fn fft_all_sync_policies_agree_with_dft() {
    let n = 128;
    let x: Vec<Complex> = (0..n)
        .map(|i| {
            let t = i as f64;
            Complex::new((t * 0.37).sin() + 0.25 * (t * 1.1).cos(), (t * 0.77).sin() * 0.5)
        })
        .collect();
    let dft = naive_dft(&x);
    assert!(max_error(&sequential_fft(&x), &dft) < 1e-8);
    for sync in [
        PhaseSync::Pairwise,
        PhaseSync::GlobalCounter,
        PhaseSync::GlobalButterfly,
        PhaseSync::GlobalDissemination,
    ] {
        let par = parallel_fft(&x, 8, sync);
        assert!(max_error(&par, &dft) < 1e-8, "{} diverged from the DFT", sync.name());
    }
}

#[test]
fn fft_roundtrip_via_conjugate() {
    // IFFT(x) = conj(FFT(conj(x))) / n — a classic identity that
    // exercises the FFT twice.
    let n = 512;
    let x: Vec<Complex> = (0..n).map(|i| Complex::new((i as f64 * 0.01).cos(), 0.0)).collect();
    let spec = parallel_fft(&x, 4, PhaseSync::Pairwise);
    let conj: Vec<Complex> = spec.iter().map(|c| c.conj()).collect();
    let back = parallel_fft(&conj, 4, PhaseSync::Pairwise);
    let recovered: Vec<Complex> =
        back.iter().map(|c| Complex::new(c.re / n as f64, -c.im / n as f64)).collect();
    let err = max_error(&recovered, &x);
    assert!(err < 1e-9, "roundtrip error {err}");
}

#[test]
fn barriers_interchangeable_under_stress() {
    // All three barrier types protect the same phased counter pattern.
    use std::sync::atomic::{AtomicUsize, Ordering};
    let p = 8;
    let episodes = 200;
    let barriers: Vec<Box<dyn PhaseBarrier>> = vec![
        Box::new(ButterflyBarrier::new(p)),
        Box::new(DisseminationBarrier::new(p)),
        Box::new(CounterBarrier::new(p)),
    ];
    for b in &barriers {
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for pid in 0..p {
                let (b, counter) = (b, &counter);
                s.spawn(move || {
                    for e in 0..episodes {
                        counter.fetch_add(1, Ordering::SeqCst);
                        b.wait(pid);
                        let v = counter.load(Ordering::SeqCst);
                        assert!(
                            v >= (e + 1) * p && v <= (e + 2) * p,
                            "{}: counter {v} out of range at episode {e}",
                            b.name()
                        );
                        b.wait(pid);
                    }
                });
            }
        });
    }
}

#[test]
fn pipelined_group_sweep_all_agree() {
    let n = 31; // not a multiple of any G
    let reference = {
        let g = Grid::new(n);
        run_sequential(&g);
        g.snapshot()
    };
    for g_size in [1, 2, 5, 7, 30, 64] {
        let g = Grid::new(n);
        run_pipelined(&g, 3, 4, g_size);
        assert_eq!(g.snapshot(), reference, "G = {g_size}");
    }
}

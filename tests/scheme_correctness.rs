//! Cross-crate integration: every scheme, on every paper workload,
//! must order every dependence instance on the simulator.

use datasync_loopir::analysis::analyze;
use datasync_loopir::ir::LoopNest;
use datasync_loopir::space::IterSpace;
use datasync_loopir::workpatterns::{depth3_nest, example2_nested, example3_branches, fig21_loop};
use datasync_schemes::scheme::Scheme;
use datasync_schemes::{InstanceBased, ProcessOriented, ReferenceBased, StatementOriented};
use datasync_sim::MachineConfig;

fn all_schemes(x: usize) -> Vec<Box<dyn Scheme>> {
    vec![
        Box::new(ReferenceBased::new()),
        Box::new(InstanceBased::new()),
        Box::new(StatementOriented::new()),
        Box::new(ProcessOriented::basic(x)),
        Box::new(ProcessOriented::new(x)),
    ]
}

fn check_workload(nest: &LoopNest, procs: usize, x: usize) {
    let graph = analyze(nest);
    let space = IterSpace::of(nest);
    for scheme in all_schemes(x) {
        let compiled = scheme.compile(nest, &graph, &space);
        let config = MachineConfig::with_processors(procs).transport(scheme.natural_transport());
        let out = compiled
            .run(&config)
            .unwrap_or_else(|e| panic!("{} failed: {e}", scheme.name()));
        let violations = compiled.validate(&out);
        assert!(
            violations.is_empty(),
            "{} violated dependences on {} iterations: {violations:?}",
            scheme.name(),
            space.count()
        );
    }
}

#[test]
fn fig21_all_schemes() {
    check_workload(&fig21_loop(48), 4, 8);
}

#[test]
fn fig21_more_processors_than_useful() {
    check_workload(&fig21_loop(20), 12, 4);
}

#[test]
fn example2_all_schemes() {
    check_workload(&example2_nested(7, 6, 3), 4, 8);
}

#[test]
fn example3_all_schemes() {
    check_workload(&example3_branches(40, 2), 4, 8);
}

#[test]
fn depth3_all_schemes() {
    check_workload(&depth3_nest(3, 3, 4, 2), 4, 8);
}

#[test]
fn single_processor_degenerates_to_sequential() {
    check_workload(&fig21_loop(16), 1, 4);
}

#[test]
fn tight_pc_pool() {
    check_workload(&fig21_loop(30), 4, 1);
}

#[test]
fn unrolled_fig21_all_schemes() {
    let un = datasync_loopir::transform::unroll(&fig21_loop(32), 4);
    check_workload(&un, 4, 8);
}

//! Golden-stat regression pins: one fault-free and one chaos-seeded run
//! per scheme, captured on the pre-refactor monolithic `Machine` and
//! asserted bit-identical ever since. These numbers are the contract the
//! `machine/` decomposition (and the `DedicatedBus` fabric default) must
//! reproduce exactly — any drift here means the refactor changed
//! simulated behaviour, not just code layout.
//!
//! To regenerate after an *intentional* behaviour change:
//! `cargo test --test golden_stats -- --ignored --nocapture` and paste
//! the printed table over `GOLDEN`.

use datasync_loopir::analysis::analyze;
use datasync_loopir::space::IterSpace;
use datasync_loopir::workpatterns::fig21_loop;
use datasync_schemes::scheme::{CompiledLoop, Scheme};
use datasync_schemes::{
    BarrierPhased, InstanceBased, ProcessOriented, ReferenceBased, StatementOriented,
};
use datasync_sim::{FabricKind, FaultPlan, MachineConfig};

const PROCS: usize = 4;
const CHAOS_SEED: u64 = 1989;
const CHAOS_INTENSITY: u32 = 45;

/// Everything a run exposes, flattened to a comparable tuple-of-scalars
/// (plus the final sync-variable state verbatim).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    makespan: u64,
    busy: u64,
    spin: u64,
    blocked: u64,
    idle: u64,
    stalled: u64,
    data_transactions: u64,
    spin_polls: u64,
    sync_broadcasts: u64,
    coalesced_writes: u64,
    rmw_ops: u64,
    dispatched: u64,
    trace_events: u64,
    data_bus_busy: u64,
    sync_bus_busy: u64,
    bank_busy: u64,
    bank_conflicts: u64,
    wait_episodes: u64,
    wait_cycles: u64,
    wait_max: u64,
    sync_posts: u64,
    sync_rmws: u64,
    sync_waits: u64,
    sync_polls: u64,
    sync_final: Vec<u64>,
}

fn roster() -> Vec<Box<dyn Scheme>> {
    vec![
        Box::new(ReferenceBased::new()),
        Box::new(InstanceBased::new()),
        Box::new(StatementOriented::new()),
        Box::new(ProcessOriented::basic(8)),
        Box::new(ProcessOriented::new(8)),
        Box::new(BarrierPhased::new(PROCS)),
    ]
}

fn fingerprint(compiled: &CompiledLoop, config: &MachineConfig) -> Fingerprint {
    let out = compiled.run(config).expect("golden run must complete");
    let s = &out.stats;
    let m = &out.metrics;
    let t = m.sync_traffic_total();
    Fingerprint {
        makespan: s.makespan,
        busy: s.total_busy(),
        spin: s.total_spin(),
        blocked: s.procs.iter().map(|p| p.blocked).sum(),
        idle: s.procs.iter().map(|p| p.idle).sum(),
        stalled: s.procs.iter().map(|p| p.stalled).sum(),
        data_transactions: s.data_transactions,
        spin_polls: s.spin_polls,
        sync_broadcasts: s.sync_broadcasts,
        coalesced_writes: s.coalesced_writes,
        rmw_ops: s.rmw_ops,
        dispatched: s.dispatched,
        trace_events: out.trace.events().len() as u64,
        data_bus_busy: m.data_bus_busy,
        sync_bus_busy: m.sync_bus_busy,
        bank_busy: m.bank_busy,
        bank_conflicts: m.bank_conflicts,
        wait_episodes: m.wait_episodes(),
        wait_cycles: m.wait_cycles(),
        wait_max: m.wait_max(),
        sync_posts: t.posts,
        sync_rmws: t.rmws,
        sync_waits: t.waits,
        sync_polls: t.polls,
        sync_final: out.sync_final.clone(),
    }
}

fn capture(scheme: &dyn Scheme) -> (Fingerprint, Fingerprint) {
    let nest = fig21_loop(24);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let compiled = scheme.compile(&nest, &graph, &space);
    // The pins were captured before the fabric axis existed; assert the
    // default still names the pre-refactor hardware — the dedicated bus
    // — and pin it explicitly so a future default flip cannot silently
    // repoint this contract at another backend.
    let clean = MachineConfig {
        sync_transport: scheme.natural_transport(),
        max_cycles: 400_000,
        ..MachineConfig::with_processors(PROCS)
    };
    assert_eq!(clean.sync_fabric, FabricKind::Dedicated, "golden pins assume the dedicated bus");
    let clean = clean.fabric(FabricKind::Dedicated);
    let chaos = clean.clone().with_faults(FaultPlan::chaos(CHAOS_SEED, CHAOS_INTENSITY));
    (fingerprint(&compiled, &clean), fingerprint(&compiled, &chaos))
}

/// `(scheme name, clean fingerprint, chaos fingerprint)` captured on the
/// pre-refactor monolith (fig21_loop(24), P=4, chaos seed 1989 @ 45%).
fn golden() -> Vec<(&'static str, Fingerprint, Fingerprint)> {
    fn fp(v: [u64; 24], sync_final: Vec<u64>) -> Fingerprint {
        Fingerprint {
            makespan: v[0],
            busy: v[1],
            spin: v[2],
            blocked: v[3],
            idle: v[4],
            stalled: v[5],
            data_transactions: v[6],
            spin_polls: v[7],
            sync_broadcasts: v[8],
            coalesced_writes: v[9],
            rmw_ops: v[10],
            dispatched: v[11],
            trace_events: v[12],
            data_bus_busy: v[13],
            sync_bus_busy: v[14],
            bank_busy: v[15],
            bank_conflicts: v[16],
            wait_episodes: v[17],
            wait_cycles: v[18],
            wait_max: v[19],
            sync_posts: v[20],
            sync_rmws: v[21],
            sync_waits: v[22],
            sync_polls: v[23],
            sync_final,
        }
    }
    // GOLDEN-BEGIN (regenerate with the ignored printer test below)
    vec![
        (
            "reference-based",
            fp(
                [
                    1160, 528, 2632, 1416, 64, 0, 192, 0, 0, 0, 120, 24, 480, 1152, 0, 0, 0, 120,
                    2632, 25, 0, 120, 0, 120,
                ],
                vec![
                    1, 2, 3, 4, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 4, 3,
                    2, 1,
                ],
            ),
            fp(
                [
                    3596, 528, 5382, 2778, 577, 5119, 197, 0, 0, 0, 120, 24, 480, 3455, 0, 0, 0,
                    120, 7107, 325, 0, 120, 0, 125,
                ],
                vec![
                    1, 2, 3, 4, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 4, 3,
                    2, 1,
                ],
            ),
        ),
        (
            "instance-based",
            fp(
                [
                    2114, 528, 1638, 6202, 88, 0, 351, 69, 0, 0, 0, 24, 376, 2106, 0, 0, 0, 68,
                    1638, 48, 68, 0, 68, 69,
                ],
                vec![
                    1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
                    1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
                    1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
                ],
            ),
            fp(
                [
                    6338, 528, 3102, 12288, 367, 9067, 354, 72, 0, 0, 0, 24, 376, 6242, 0, 0, 0,
                    68, 4013, 284, 68, 0, 68, 72,
                ],
                vec![
                    1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
                    1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
                    1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
                ],
            ),
        ),
        (
            "statement-oriented",
            fp(
                [
                    1160, 528, 0, 4048, 64, 0, 192, 0, 96, 0, 0, 24, 240, 1152, 96, 0, 0, 0, 0, 0,
                    96, 0, 209, 0,
                ],
                vec![24, 24, 24, 24],
            ),
            fp(
                [
                    3660, 528, 1767, 6744, 568, 5033, 192, 0, 165, 0, 0, 24, 240, 3357, 2241, 0, 0,
                    35, 2686, 241, 96, 0, 209, 0,
                ],
                vec![24, 24, 24, 24],
            ),
        ),
        (
            "process-oriented (X=8, basic)",
            fp(
                [
                    1160, 528, 0, 4048, 64, 0, 192, 0, 96, 0, 0, 24, 240, 1152, 96, 0, 0, 0, 0, 0,
                    96, 0, 137, 0,
                ],
                vec![
                    103079215104,
                    107374182400,
                    111669149696,
                    115964116992,
                    120259084288,
                    124554051584,
                    128849018880,
                    133143986176,
                ],
            ),
            fp(
                [
                    3330, 528, 904, 7196, 378, 4314, 192, 0, 165, 4, 0, 24, 240, 3232, 1970, 0, 0,
                    18, 1064, 116, 96, 0, 137, 0,
                ],
                vec![
                    103079215104,
                    107374182400,
                    111669149696,
                    115964116992,
                    120259084288,
                    124554051584,
                    128849018880,
                    133143986176,
                ],
            ),
        ),
        (
            "process-oriented (X=8, improved)",
            fp(
                [
                    1160, 528, 0, 4048, 64, 0, 192, 0, 96, 0, 0, 24, 240, 1152, 96, 0, 0, 0, 0, 0,
                    96, 0, 137, 0,
                ],
                vec![
                    103079215104,
                    107374182400,
                    111669149696,
                    115964116992,
                    120259084288,
                    124554051584,
                    128849018880,
                    133143986176,
                ],
            ),
            fp(
                [
                    3330, 528, 904, 7196, 378, 4314, 192, 0, 165, 4, 0, 24, 240, 3232, 1970, 0, 0,
                    18, 1064, 116, 96, 0, 137, 0,
                ],
                vec![
                    103079215104,
                    107374182400,
                    111669149696,
                    115964116992,
                    120259084288,
                    124554051584,
                    128849018880,
                    133143986176,
                ],
            ),
        ),
        (
            "barrier-phased (P=4)",
            fp(
                [
                    1176, 520, 192, 3952, 40, 0, 192, 0, 24, 8, 0, 20, 240, 1152, 24, 0, 0, 16,
                    176, 14, 32, 0, 32, 0,
                ],
                vec![8, 8, 8, 8],
            ),
            fp(
                [
                    3980, 520, 1875, 7572, 192, 5761, 192, 0, 40, 7, 0, 20, 240, 3614, 403, 0, 0,
                    19, 2785, 554, 32, 0, 32, 0,
                ],
                vec![8, 8, 8, 8],
            ),
        ),
    ]
    // GOLDEN-END
}

#[test]
fn dedicated_bus_reproduces_pre_refactor_stats() {
    let pins = golden();
    assert_eq!(pins.len(), roster().len(), "golden table missing schemes");
    for (scheme, (name, clean, chaos)) in roster().iter().zip(pins) {
        assert_eq!(scheme.name(), name, "roster order changed");
        let (got_clean, got_chaos) = capture(scheme.as_ref());
        assert_eq!(got_clean, clean, "{name}: clean run drifted from pre-refactor golden");
        assert_eq!(got_chaos, chaos, "{name}: chaos run drifted from pre-refactor golden");
    }
}

/// Prints the `golden()` body for the current code. Run with
/// `cargo test --test golden_stats -- --ignored --nocapture`.
#[test]
#[ignore]
fn print_golden_table() {
    fn row(f: &Fingerprint) -> String {
        format!(
            "fp([{}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}], vec!{:?})",
            f.makespan,
            f.busy,
            f.spin,
            f.blocked,
            f.idle,
            f.stalled,
            f.data_transactions,
            f.spin_polls,
            f.sync_broadcasts,
            f.coalesced_writes,
            f.rmw_ops,
            f.dispatched,
            f.trace_events,
            f.data_bus_busy,
            f.sync_bus_busy,
            f.bank_busy,
            f.bank_conflicts,
            f.wait_episodes,
            f.wait_cycles,
            f.wait_max,
            f.sync_posts,
            f.sync_rmws,
            f.sync_waits,
            f.sync_polls,
            f.sync_final,
        )
    }
    println!("vec![");
    for scheme in roster() {
        let (clean, chaos) = capture(scheme.as_ref());
        println!("        (\n            \"{}\",", scheme.name());
        println!("            {},", row(&clean));
        println!("            {},", row(&chaos));
        println!("        ),");
    }
    println!("    ]");
}

//! Executes the tutorial (`docs/TUTORIAL.md`) end to end so the document
//! can never rot.

use datasync_core::doacross::Doacross;
use datasync_core::planexec::run_nest;
use datasync_loopir::analysis::analyze;
use datasync_loopir::covering::reduce;
use datasync_loopir::exec::run_sequential;
use datasync_loopir::ir::{AccessKind::*, ArrayId, ArrayRef, LoopNest, LoopNestBuilder};
use datasync_loopir::plan::SyncPlan;
use datasync_loopir::profit::analyze_doacross;
use datasync_loopir::render::render_doacross;
use datasync_loopir::space::IterSpace;
use datasync_schemes::scheme::Scheme;
use datasync_schemes::ProcessOriented;
use datasync_sim::MachineConfig;

fn tutorial_nest(n: i64) -> LoopNest {
    let (a, b, c) = (ArrayId(0), ArrayId(1), ArrayId(2));
    LoopNestBuilder::new(1, n)
        .stmt(
            "S1",
            8,
            vec![
                ArrayRef::simple(a, Read, -2),
                ArrayRef::simple(b, Read, -3),
                ArrayRef::simple(a, Write, 0),
            ],
        )
        .stmt("S2", 5, vec![ArrayRef::simple(a, Read, 0), ArrayRef::simple(b, Write, 0)])
        .stmt("S3", 3, vec![ArrayRef::simple(b, Read, -3), ArrayRef::simple(c, Write, 0)])
        .build()
}

#[test]
fn step2_analysis_finds_the_advertised_arcs() {
    let nest = tutorial_nest(1000);
    let graph = analyze(&nest);
    let has = |s: usize, t: usize, d: i64| {
        graph
            .deps()
            .iter()
            .any(|dep| dep.src.0 == s && dep.dst.0 == t && dep.linear_distance(&nest) == d)
    };
    assert!(has(0, 0, 2), "S1 -> S1 (flow, 2)");
    assert!(has(1, 0, 3), "S2 -> S1 (flow, 3)");
    assert!(has(0, 1, 0), "S1 -> S2 (flow, 0)");
    assert!(has(1, 2, 3), "S2 -> S3 (flow, 3)");
    let reduced = reduce(&nest, &graph);
    assert!(reduced.deps().len() <= graph.deps().len());
}

#[test]
fn step3_profitability_says_yes() {
    let nest = tutorial_nest(1000);
    let space = IterSpace::of(&nest);
    let linear = reduce(&nest, &analyze(&nest)).linearized(&space);
    let decision = analyze_doacross(&nest, &linear);
    assert!(decision.profitable(1000, 8, 1.5), "{decision:?}");
}

#[test]
fn step4_listing_renders() {
    let nest = tutorial_nest(1000);
    let space = IterSpace::of(&nest);
    let linear = reduce(&nest, &analyze(&nest)).linearized(&space);
    let plan = SyncPlan::build(&nest, &linear);
    let listing = render_doacross(&nest, &plan);
    assert!(listing.contains("doacross"));
    assert!(listing.contains("wait_PC"));
    assert!(listing.contains("transfer_PC();"));
}

#[test]
fn step5_simulator_validates() {
    let nest = tutorial_nest(200);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let compiled = ProcessOriented::new(8).compile(&nest, &graph, &space);
    let out = compiled.run(&MachineConfig::with_processors(4)).expect("simulation failed");
    assert!(compiled.validate(&out).is_empty());
    assert!(out.stats.makespan > 0);
}

#[test]
fn step5_real_threads_match_oracle() {
    let nest = tutorial_nest(300);
    let space = IterSpace::of(&nest);
    let linear = reduce(&nest, &analyze(&nest)).linearized(&space);
    let plan = SyncPlan::build(&nest, &linear);
    let exec = Doacross::new(space.count()).threads(4).pcs(8);
    let parallel = run_nest(&exec, &nest, &plan);
    assert_eq!(parallel, run_sequential(&nest));
}

//! Property-style integration tests: random Doacross loops are compiled
//! under every scheme and checked against the sequential oracle — on the
//! simulator (trace order) and on real threads (bit-exact store
//! equality).
//!
//! Cases are drawn from a seeded `SplitMix64` stream instead of an
//! external property-testing crate, so every run covers the exact same
//! cases and a failure message names the seed to replay.

use datasync_core::doacross::Doacross;
use datasync_core::planexec::run_nest;
use datasync_loopir::analysis::analyze;
use datasync_loopir::covering::reduce;
use datasync_loopir::exec::run_sequential;
use datasync_loopir::plan::SyncPlan;
use datasync_loopir::space::IterSpace;
use datasync_schemes::scheme::Scheme;
use datasync_schemes::{InstanceBased, ProcessOriented, ReferenceBased, StatementOriented};
use datasync_sim::{MachineConfig, SplitMix64};
use datasync_workloads::synthetic::{random_nest, random_nest_2d, SynthParams};

const CASES: usize = 24;

fn params() -> SynthParams {
    SynthParams { n_iters: 24, ..Default::default() }
}

/// Yields `CASES` seeds in `0..10_000`, deterministically per stream id.
fn seeds(stream: u64) -> impl Iterator<Item = u64> {
    let mut g = SplitMix64::new(0xda7a_5eed ^ stream);
    (0..CASES).map(move |_| g.below(10_000))
}

/// The real-thread process-oriented executor reproduces sequential
/// semantics bit-for-bit on random loops.
#[test]
fn real_threads_match_oracle() {
    for seed in seeds(1) {
        let nest = random_nest(seed, &params());
        let space = IterSpace::of(&nest);
        let graph = reduce(&nest, &analyze(&nest)).linearized(&space);
        let plan = SyncPlan::build(&nest, &graph);
        let exec = Doacross::new(space.count()).threads(4).pcs(4);
        let parallel = run_nest(&exec, &nest, &plan);
        assert_eq!(parallel, run_sequential(&nest), "seed {seed}");
    }
}

/// Every scheme orders every dependence instance on random loops.
#[test]
fn sim_schemes_order_random_loops() {
    for seed in seeds(2) {
        let nest = random_nest(seed, &params());
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        let schemes: Vec<Box<dyn Scheme>> = vec![
            Box::new(ReferenceBased::new()),
            Box::new(InstanceBased::new()),
            Box::new(StatementOriented::new()),
            Box::new(ProcessOriented::new(4)),
        ];
        for scheme in schemes {
            let compiled = scheme.compile(&nest, &graph, &space);
            let config = MachineConfig::with_processors(3).transport(scheme.natural_transport());
            let out = compiled
                .run(&config)
                .unwrap_or_else(|e| panic!("{} on seed {seed}: {e}", scheme.name()));
            let violations = compiled.validate(&out);
            assert!(violations.is_empty(), "{} on seed {}: {:?}", scheme.name(), seed, violations);
        }
    }
}

/// Covering elimination is sound: the reduced graph still orders every
/// original arc (checked through the process-oriented scheme, which
/// synchronizes only the reduced arcs but is validated against all).
#[test]
fn covering_preserves_all_arcs() {
    for seed in seeds(3) {
        let nest = random_nest(seed, &params());
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        let removed = graph.deps().len() - reduce(&nest, &graph).deps().len();
        // Compile (which applies covering internally) and validate against
        // the FULL arc set.
        let scheme = ProcessOriented::new(8);
        let compiled = scheme.compile(&nest, &graph, &space);
        let out = compiled
            .run(&MachineConfig::with_processors(4))
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let violations = compiled.validate(&out);
        assert!(
            violations.is_empty(),
            "seed {seed} removed {removed} arcs but violated: {violations:?}"
        );
    }
}

/// PC packing preserves the paper's lattice order.
#[test]
fn pc_order_law() {
    use datasync_core::pc::PcValue;
    let mut g = SplitMix64::new(0x9c);
    for _ in 0..400 {
        let (w1, s1) = (g.below(1000), g.below(1000) as u32);
        let (w2, s2) = (g.below(1000), g.below(1000) as u32);
        let a = PcValue::new(w1, s1);
        let b = PcValue::new(w2, s2);
        let paper_geq = w1 > w2 || (w1 == w2 && s1 >= s2);
        assert_eq!(a.pack() >= b.pack(), paper_geq, "({w1},{s1}) vs ({w2},{s2})");
    }
}

/// Depth-2 nests: linearized pids preserve the oracle on real threads
/// (Example 2 end-to-end, randomized).
#[test]
fn nested_real_threads_match_oracle() {
    for seed in seeds(4) {
        let nest = random_nest_2d(seed, 5, 6);
        let space = IterSpace::of(&nest);
        let graph = reduce(&nest, &analyze(&nest)).linearized(&space);
        let plan = SyncPlan::build(&nest, &graph);
        let exec = Doacross::new(space.count()).threads(4).pcs(8);
        let parallel = run_nest(&exec, &nest, &plan);
        assert_eq!(parallel, run_sequential(&nest), "2d seed {seed}");
    }
}

/// Depth-2 nests under every sim scheme.
#[test]
fn nested_sim_schemes_ordered() {
    for seed in seeds(5) {
        let nest = random_nest_2d(seed, 4, 5);
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        let schemes: Vec<Box<dyn Scheme>> = vec![
            Box::new(ReferenceBased::new()),
            Box::new(InstanceBased::new()),
            Box::new(StatementOriented::new()),
            Box::new(ProcessOriented::new(4)),
        ];
        for scheme in schemes {
            let compiled = scheme.compile(&nest, &graph, &space);
            let config = MachineConfig::with_processors(3).transport(scheme.natural_transport());
            let out = compiled
                .run(&config)
                .unwrap_or_else(|e| panic!("{} on 2d seed {seed}: {e}", scheme.name()));
            let violations = compiled.validate(&out);
            assert!(
                violations.is_empty(),
                "{} on 2d seed {}: {:?}",
                scheme.name(),
                seed,
                violations
            );
        }
    }
}

/// The real-thread reference-based executor (per-element keys) also
/// reproduces sequential semantics on random loops.
#[test]
fn keyed_real_threads_match_oracle() {
    for seed in seeds(6) {
        let nest = random_nest(seed, &params());
        let store = datasync_core::planexec::SharedArrayStore::new();
        datasync_core::keys::run_nest_keyed(&nest, 4, &store);
        assert_eq!(store.into_store(), run_sequential(&nest), "seed {seed}");
    }
}

/// The parser never panics on arbitrary input (errors only).
#[test]
fn parser_total_on_garbage() {
    let mut g = SplitMix64::new(0xbad);
    // Bytes weighted toward the language's own tokens to reach deep
    // parser states, plus raw printable noise.
    let alphabet: Vec<char> =
        "for := to do end S0123456789 ABab[]()+-, \n\t;){}#".chars().collect();
    for case in 0..200 {
        let len = g.range_usize(0, 200);
        let input: String =
            (0..len).map(|_| alphabet[g.range_usize(0, alphabet.len() - 1)]).collect();
        let _ = datasync_loopir::parse::parse_loop(&input);
        // Also mutate a valid rendering: the hardest inputs are
        // almost-correct ones.
        if case % 2 == 0 {
            let nest = random_nest(g.below(10_000), &SynthParams { branch_pct: 0, ..params() });
            let mut text = datasync_loopir::render::render_loop(&nest);
            if !text.is_empty() {
                let cut = g.range_usize(0, text.len() - 1);
                text.truncate(cut);
            }
            let _ = datasync_loopir::parse::parse_loop(&text);
        }
    }
}

/// The renderer and parser round-trip: any branch-free random loop
/// prints to the loop language and parses back to an IR with the same
/// dependence graph.
#[test]
fn render_parse_round_trip() {
    for seed in seeds(7) {
        let nest = random_nest(seed, &SynthParams { branch_pct: 0, ..params() });
        let text = datasync_loopir::render::render_loop(&nest);
        let parsed = datasync_loopir::parse::parse_loop(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
        assert_eq!(parsed.n_stmts(), nest.n_stmts());
        assert_eq!(parsed.iter_count(), nest.iter_count());
        let costs =
            |n: &datasync_loopir::ir::LoopNest| -> Vec<u32> { n.stmts().map(|s| s.cost).collect() };
        assert_eq!(costs(&parsed), costs(&nest), "costs must round-trip");
        // The parser normalizes reference order (reads before writes), so
        // arcs can be discovered in a different order: compare as sets.
        let key = |d: &datasync_loopir::graph::Dep| format!("{d}");
        let mut a: Vec<String> = analyze(&parsed).deps().iter().map(key).collect();
        let mut b: Vec<String> = analyze(&nest).deps().iter().map(key).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "seed {seed}");
    }
}

/// The simulator is deterministic: same workload, same everything.
#[test]
fn simulator_deterministic() {
    for seed in seeds(8) {
        let nest = random_nest(seed, &SynthParams { n_iters: 12, ..Default::default() });
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        let compiled = ProcessOriented::new(4).compile(&nest, &graph, &space);
        let config = MachineConfig::with_processors(3);
        let a = compiled.run(&config).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let b = compiled.run(&config).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.trace, b.trace);
    }
}
